// Observability suite (DESIGN.md section 13): per-query TraceSpan trees,
// the metrics registry with its text/JSON exporters, and the slow-query
// log, locked down deterministically. Everything time-driven runs under a
// VirtualClock (time advances only inside SleepFor), so span trees are
// byte-identical across runs, leaf durations decompose end-to-end latency
// *exactly* (integer-nanosecond arithmetic, no tolerance), and retry/
// backoff spans carry the exact simulated durations the fault injector and
// backoff schedule imply. CI also builds this test with -DBIX_SANITIZE=
// thread and address,undefined.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/bitmap_index_facade.h"
#include "core/writable_index.h"
#include "server/metrics.h"
#include "server/metrics_registry.h"
#include "server/query_service.h"
#include "storage/fault_injector.h"
#include "util/clock.h"
#include "util/trace.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

std::chrono::steady_clock::duration Seconds(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

// The exact nanosecond count a double-seconds sleep advances a
// VirtualClock by — the same conversion ClockInterface::SleepFor performs,
// so span-duration expectations below are exact, not approximate.
int64_t Nanos(double seconds) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::duration<double>(seconds))
      .count();
}

// Collects every span named `name` in the tree (depth-first).
void CollectNamed(const TraceSpan& span, std::string_view name,
                  std::vector<const TraceSpan*>* out) {
  if (span.name == name) out->push_back(&span);
  for (const TraceSpan& c : span.children) CollectNamed(c, name, out);
}

int64_t SumNamedDurations(const TraceSpan& root, std::string_view name) {
  std::vector<const TraceSpan*> spans;
  CollectNamed(root, name, &spans);
  int64_t total = 0;
  for (const TraceSpan* s : spans) total += s->duration_ns;
  return total;
}

// ----------------------------------------------------------- span basics --

TEST(TraceSpanTest, RenderAndJsonAreDeterministic) {
  TraceSpan root;
  root.name = "query";
  root.duration_ns = 123456;
  root.tags.emplace_back("kind", "interval");
  TraceSpan child;
  child.name = "eval";
  child.start_ns = 1000;
  child.duration_ns = 122456;
  root.children.push_back(child);

  EXPECT_EQ(root.Render(),
            "query 123.456us kind=interval\n"
            "  eval 122.456us\n");
  EXPECT_EQ(root.ToJson(),
            "{\"name\":\"query\",\"start_ns\":0,\"duration_ns\":123456,"
            "\"tags\":{\"kind\":\"interval\"},\"children\":["
            "{\"name\":\"eval\",\"start_ns\":1000,\"duration_ns\":122456}]}");
  EXPECT_EQ(root.SpanCount(), 2u);
  EXPECT_EQ(root.ChildrenNanos(), 122456);
  EXPECT_EQ(root.LeafNanos(), 122456);
  ASSERT_NE(root.Find("eval"), nullptr);
  EXPECT_EQ(root.Find("missing"), nullptr);
  EXPECT_EQ(root.TagValue("kind"), "interval");
  EXPECT_EQ(root.TagValue("absent"), "");
}

TEST(TraceSinkTest, NestedSpansAttributeVirtualTimeToLeaves) {
  VirtualClock clock;
  TraceSink sink(&clock, "query");
  sink.Begin("eval");
  sink.Begin("io");
  clock.SleepFor(5e-3, nullptr);
  sink.End();
  sink.Begin("decode");
  clock.SleepFor(2e-3, nullptr);
  sink.End();
  sink.End();
  TraceSpan root = sink.Finish();

  ASSERT_EQ(root.children.size(), 1u);
  const TraceSpan& eval = root.children[0];
  ASSERT_EQ(eval.children.size(), 2u);
  EXPECT_EQ(eval.children[0].duration_ns, Nanos(5e-3));
  EXPECT_EQ(eval.children[1].duration_ns, Nanos(2e-3));
  // The attribution invariant, exactly: all elapsed time lives in leaves.
  EXPECT_EQ(eval.duration_ns, eval.LeafNanos());
  EXPECT_EQ(root.duration_ns, root.LeafNanos());
  EXPECT_EQ(root.duration_ns, Nanos(5e-3) + Nanos(2e-3));
}

TEST(TraceSinkTest, FinishClosesOpenSpansAndRecordAddsBoundedChild) {
  VirtualClock clock;
  const ClockInterface::TimePoint t0 = clock.Now();
  clock.Advance(1e-3);
  const ClockInterface::TimePoint t1 = clock.Now();
  TraceSink sink(&clock, "query", t0);  // root anchored in the past
  sink.Record("queue", t0, t1);
  sink.Begin("eval");  // left open deliberately
  TraceSpan root = sink.Finish();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "queue");
  EXPECT_EQ(root.children[0].start_ns, 0);
  EXPECT_EQ(root.children[0].duration_ns, Nanos(1e-3));
  EXPECT_EQ(root.children[1].name, "eval");
  EXPECT_EQ(root.duration_ns, Nanos(1e-3));
}

// -------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, DumpTextMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("b_counter")->Increment(7);
  registry.GetCounter("a_counter")->Increment();
  registry.GetGauge("my_gauge")->Set(2.5);
  StripedLatencyHistogram* h = registry.GetHistogram("stage");
  h->Record(100e-6);  // bucket upper edge 128us
  h->Record(100e-6);

  // Names sort lexicographically; histograms expand to five lines.
  EXPECT_EQ(registry.DumpText(),
            "a_counter: 1\n"
            "b_counter: 7\n"
            "my_gauge: 2.500000\n"
            "stage_count: 2\n"
            "stage_sum_us: 200.000\n"
            "stage_p50_us: 128.000\n"
            "stage_p95_us: 128.000\n"
            "stage_p99_us: 128.000\n");
}

TEST(MetricsRegistryTest, DumpJsonMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Increment(3);
  registry.GetGauge("rate")->Set(0.5);
  registry.GetHistogram("lat")->Record(1e-6);  // bucket 0, upper edge 1us

  EXPECT_EQ(registry.DumpJson(),
            "{\"counters\":{\"hits\":3},"
            "\"gauges\":{\"rate\":0.500000},"
            "\"histograms\":{\"lat\":{\"count\":1,\"sum_us\":1.000,"
            "\"p50_us\":1.000,\"p95_us\":1.000,\"p99_us\":1.000}}}");
}

TEST(MetricsRegistryTest, GetReturnsStableHandleForSameName) {
  MetricsRegistry registry;
  MetricsCounter* a = registry.GetCounter("x");
  EXPECT_EQ(registry.GetCounter("x"), a);
  a->Increment(2);
  EXPECT_EQ(registry.GetCounter("x")->Value(), 2u);
}

TEST(LatencyHistogramTest, AddMergesEveryMember) {
  LatencyHistogram a, b;
  a.Record(100e-6);
  b.Record(100e-6);
  b.Record(10e-3);
  a.Add(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum_seconds(), 100e-6 + 100e-6 + 10e-3);
  EXPECT_GT(a.p99(), a.p50());  // the 10ms tail landed in a higher bucket
}

// Mirrors the IoStats tripwire test in tests/storage_test.cc: every
// ServiceStats member must be merged by Add. The sizeof static_assert in
// metrics.h fails the build when a member is added; this test fails when a
// member is added to the assert but forgotten in Add.
TEST(ServiceStatsTest, AddMergesFieldByField) {
  ServiceStats a;
  a.submitted = 1;
  a.rejected_invalid = 2;
  a.rejected_overload = 3;
  a.completed = 4;
  a.retries = 5;
  a.corruptions_detected = 6;
  a.quarantined_bitmaps = 7;
  a.degraded_queries = 8;
  a.deadline_exceeded = 9;
  a.cancelled = 10;
  a.shed_in_queue = 11;
  a.breaker_opens = 12;
  a.breaker_open_seconds = 1.5;
  a.breaker_state = 1;
  a.io.scans = 13;
  a.io.pool_hits = 14;
  a.queue_seconds_total = 0.25;
  a.rewrite_seconds_total = 0.5;
  a.eval_seconds_total = 0.75;
  a.latency.Record(100e-6);

  ServiceStats b = a;
  b.breaker_state = 2;
  b.latency.Record(10e-3);
  a.Add(b);

  EXPECT_EQ(a.submitted, 2u);
  EXPECT_EQ(a.rejected_invalid, 4u);
  EXPECT_EQ(a.rejected_overload, 6u);
  EXPECT_EQ(a.completed, 8u);
  EXPECT_EQ(a.retries, 10u);
  EXPECT_EQ(a.corruptions_detected, 12u);
  EXPECT_EQ(a.quarantined_bitmaps, 14u);
  EXPECT_EQ(a.degraded_queries, 16u);
  EXPECT_EQ(a.deadline_exceeded, 18u);
  EXPECT_EQ(a.cancelled, 20u);
  EXPECT_EQ(a.shed_in_queue, 22u);
  EXPECT_EQ(a.breaker_opens, 24u);
  EXPECT_DOUBLE_EQ(a.breaker_open_seconds, 3.0);
  EXPECT_EQ(a.breaker_state, 2u);  // point-in-time: latest snapshot wins
  EXPECT_EQ(a.io.scans, 26u);
  EXPECT_EQ(a.io.pool_hits, 28u);
  EXPECT_DOUBLE_EQ(a.queue_seconds_total, 0.5);
  EXPECT_DOUBLE_EQ(a.rewrite_seconds_total, 1.0);
  EXPECT_DOUBLE_EQ(a.eval_seconds_total, 1.5);
  EXPECT_EQ(a.latency.count(), 3u);
  EXPECT_DOUBLE_EQ(a.latency.sum_seconds(), 100e-6 + 100e-6 + 10e-3);
}

// -------------------------------------------------------- slow-query log --

TEST(SlowQueryLogTest, KeepsTopKByLatencySlowestFirst) {
  SlowQueryLog log(2);
  auto entry = [](double s, std::string desc) {
    SlowQueryLog::Entry e;
    e.total_seconds = s;
    e.description = std::move(desc);
    e.status = "OK";
    return e;
  };
  EXPECT_TRUE(log.WouldAdmit(1e-6));
  log.MaybeAdd(entry(3e-3, "a"));
  log.MaybeAdd(entry(1e-3, "b"));
  log.MaybeAdd(entry(2e-3, "c"));  // displaces b
  EXPECT_FALSE(log.WouldAdmit(1e-3));  // at the floor: rejected
  log.MaybeAdd(entry(1e-3, "d"));      // no-op
  std::vector<SlowQueryLog::Entry> got = log.Snapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].description, "a");
  EXPECT_EQ(got[1].description, "c");
  EXPECT_EQ(log.Render(),
            "3000.000us a status=OK\n"
            "2000.000us c status=OK\n");
}

TEST(SlowQueryLogTest, RenderIndentsTraceUnderHeader) {
  SlowQueryLog log(1);
  SlowQueryLog::Entry e;
  e.total_seconds = 5e-3;
  e.description = "interval [0,2]";
  e.status = "OK";
  e.trace_render = "query 5000.000us\n  eval 5000.000us\n";
  log.MaybeAdd(std::move(e));
  EXPECT_EQ(log.Render(),
            "5000.000us interval [0,2] status=OK\n"
            "    query 5000.000us\n"
            "      eval 5000.000us\n");
}

// --------------------------------------------------------------- service --

class ObservabilityServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ColumnSpec spec;
    spec.rows = 5000;
    spec.cardinality = 40;
    spec.zipf_z = 1.0;
    column_ = GenerateZipfColumn(spec);
    IndexConfig config;
    // Equality encoding: an interval query [lo, hi] fetches exactly one
    // bitmap per value, so traces have a predictable fetch count.
    config.encoding = EncodingKind::kEquality;
    index_.emplace(BuildIndex(column_, config).value());
  }

  // One worker + injected clock: a fully serialized, deterministic
  // timeline.
  ServiceOptions DeterministicService(ClockInterface* clock) const {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = 64;
    options.cache_shards = 2;
    options.clock = clock;
    return options;
  }

  Column column_;
  std::optional<BitmapIndex> index_;
};

TEST_F(ObservabilityServiceTest, TracedQueryProducesExpectedSpanTree) {
  VirtualClock clock;
  ServiceOptions options = DeterministicService(&clock);
  options.io_latency_scale = 1.0;  // misses advance simulated time
  QueryService service(&*index_, options);

  QueryResult r = service
                      .Submit(ServiceQuery::Interval(IntervalQuery{0, 2, false})
                                  .WithTrace())
                      .get();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.trace, nullptr);
  const TraceSpan& root = *r.trace;

  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.TagValue("kind"), "interval");
  EXPECT_EQ(root.TagValue("status"), "OK");
  // The pipeline stages appear as direct children in submission order.
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(root.children[0].name, "admission");
  EXPECT_EQ(root.children[1].name, "queue");
  EXPECT_EQ(root.children[2].name, "rewrite");
  EXPECT_EQ(root.children[3].name, "eval");

  // Three equality bitmaps -> three policy-level fetches, each wrapping a
  // cold "read" with its modeled "io" sleep and a "materialize" leaf.
  std::vector<const TraceSpan*> fetches;
  CollectNamed(root, "fetch", &fetches);
  ASSERT_EQ(fetches.size(), 3u);
  for (const TraceSpan* fetch : fetches) {
    EXPECT_EQ(fetch->TagValue("attempts"), "1");
    ASSERT_EQ(fetch->children.size(), 1u);
    const TraceSpan& read = fetch->children[0];
    EXPECT_EQ(read.name, "read");
    EXPECT_EQ(read.TagValue("outcome"), "miss");
    EXPECT_NE(read.TagValue("key"), "");
    EXPECT_NE(read.TagValue("bytes"), "");
    EXPECT_NE(read.Find("io"), nullptr);
    EXPECT_NE(read.Find("materialize"), nullptr);
  }

  // Leaf attribution, exactly: end-to-end duration decomposes into leaves,
  // and the modeled sleep leaves match the query's IoStats to the
  // nanosecond.
  EXPECT_GT(root.duration_ns, 0);
  EXPECT_EQ(root.duration_ns, root.LeafNanos());
  int64_t slept = 0;
  for (const TraceSpan* fetch : fetches) {
    for (const char* leaf : {"io", "decode", "spike"}) {
      slept += SumNamedDurations(*fetch, leaf);
    }
  }
  EXPECT_EQ(root.duration_ns, slept);  // only modeled I/O advanced the clock

  // A warm re-run hits the pool: no io leaves, zero virtual duration.
  QueryResult warm =
      service
          .Submit(
              ServiceQuery::Interval(IntervalQuery{0, 2, false}).WithTrace())
          .get();
  ASSERT_TRUE(warm.status.ok());
  ASSERT_NE(warm.trace, nullptr);
  std::vector<const TraceSpan*> warm_reads;
  CollectNamed(*warm.trace, "read", &warm_reads);
  ASSERT_EQ(warm_reads.size(), 3u);
  for (const TraceSpan* read : warm_reads) {
    EXPECT_EQ(read->TagValue("outcome"), "hit");
    EXPECT_EQ(read->Find("io"), nullptr);
  }
  EXPECT_EQ(warm.trace->duration_ns, 0);
  EXPECT_EQ(warm.trace->duration_ns, warm.trace->LeafNanos());
}

TEST_F(ObservabilityServiceTest, RetryAndBackoffSpansHaveExactDurations) {
  // Every cold read fails twice before succeeding; with a 100us base
  // backoff the worker sleeps exactly 100us then 200us per fetch. No
  // modeled I/O, so backoff is the *only* thing advancing the clock.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 2;
  FaultInjector injector(fault_opts);

  VirtualClock clock;
  ServiceOptions options = DeterministicService(&clock);
  options.fault_injector = &injector;
  options.max_fetch_retries = 3;
  options.retry_backoff_seconds = 100e-6;
  options.brownout.enabled = false;  // keep the full retry budget in force
  QueryService service(&*index_, options);

  QueryResult r = service
                      .Submit(ServiceQuery::Interval(IntervalQuery{3, 3, false})
                                  .WithTrace())
                      .get();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.trace, nullptr);

  std::vector<const TraceSpan*> fetches;
  CollectNamed(*r.trace, "fetch", &fetches);
  ASSERT_EQ(fetches.size(), 1u);
  const TraceSpan& fetch = *fetches[0];
  EXPECT_EQ(fetch.TagValue("attempts"), "3");
  // Interleaving: read(fail) backoff read(fail) backoff read(ok).
  ASSERT_EQ(fetch.children.size(), 5u);
  EXPECT_EQ(fetch.children[0].name, "read");
  EXPECT_EQ(fetch.children[0].TagValue("fault"), "unavailable");
  EXPECT_EQ(fetch.children[1].name, "backoff");
  EXPECT_EQ(fetch.children[1].duration_ns, Nanos(100e-6));
  EXPECT_EQ(fetch.children[2].name, "read");
  EXPECT_EQ(fetch.children[2].TagValue("fault"), "unavailable");
  EXPECT_EQ(fetch.children[3].name, "backoff");
  EXPECT_EQ(fetch.children[3].duration_ns, Nanos(200e-6));  // doubled
  EXPECT_EQ(fetch.children[4].name, "read");
  EXPECT_EQ(fetch.children[4].TagValue("outcome"), "miss");

  // End-to-end latency is exactly the two backoff sleeps.
  EXPECT_EQ(r.trace->duration_ns, Nanos(100e-6) + Nanos(200e-6));
  EXPECT_EQ(r.trace->duration_ns, r.trace->LeafNanos());
  EXPECT_EQ(service.Stats().retries, 2u);
}

TEST_F(ObservabilityServiceTest, TracesAreByteIdenticalAcrossRuns) {
  // Same seed, same virtual timeline, same faults -> the rendered trace
  // and its JSON must match byte for byte across two fresh services.
  auto run_once = [&]() {
    FaultInjectorOptions fault_opts;
    fault_opts.seed = 42;
    fault_opts.unavailable_first_attempts = 1;
    fault_opts.latency_spike_prob = 0.5;
    fault_opts.latency_spike_seconds = 3e-3;
    FaultInjector injector(fault_opts);

    VirtualClock clock;
    ServiceOptions options = DeterministicService(&clock);
    options.io_latency_scale = 1.0;
    options.fault_injector = &injector;
    options.retry_backoff_seconds = 100e-6;
    options.brownout.enabled = false;
    QueryService service(&*index_, options);

    std::string out;
    for (uint32_t lo = 0; lo < 3; ++lo) {
      QueryResult r =
          service
              .Submit(ServiceQuery::Interval(IntervalQuery{lo, lo + 2, false})
                          .WithTrace())
              .get();
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      if (r.trace != nullptr) {
        out += r.trace->Render();
        out += r.trace->ToJson();
        out += '\n';
      }
    }
    return out;
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Sanity: the scenario exercised retries (backoff spans present).
  EXPECT_NE(first.find("backoff"), std::string::npos);
}

TEST_F(ObservabilityServiceTest, ShedQueryStillCarriesWaitTrace) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  ServiceQuery q = ServiceQuery::Interval(IntervalQuery{3, 3, false});
  q.WithCancel(CancelToken::WithDeadline(clock.Now() - Seconds(1e-3)));
  q.WithTrace();
  QueryResult r = service.Submit(std::move(q)).get();
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->TagValue("shed"), "at_dequeue");
  EXPECT_EQ(r.trace->TagValue("status"), "DeadlineExceeded");
  EXPECT_NE(r.trace->Find("queue"), nullptr);
  EXPECT_EQ(r.trace->Find("eval"), nullptr);  // never executed
}

TEST_F(ObservabilityServiceTest, ExportMetricsFreshServiceMatchesGolden) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  // Nothing has run: every metric is zero and the dump is fully
  // deterministic. This golden locks the exporter's wire format.
  EXPECT_EQ(service.ExportMetrics(MetricsFormat::kText),
            "corruptions_detected: 0\n"
            "fetch_retries: 0\n"
            "quarantined_bitmaps: 0\n"
            "queries_cancelled: 0\n"
            "queries_completed: 0\n"
            "queries_deadline_exceeded: 0\n"
            "queries_degraded: 0\n"
            "queries_rejected_invalid: 0\n"
            "queries_rejected_overload: 0\n"
            "queries_shed_in_queue: 0\n"
            "queries_submitted: 0\n"
            "queries_traced: 0\n"
            "breaker_open_seconds: 0.000000\n"
            "breaker_opens: 0.000000\n"
            "breaker_state: 0.000000\n"
            "io_bytes_read: 0.000000\n"
            "io_cpu_seconds: 0.000000\n"
            "io_decode_seconds: 0.000000\n"
            "io_decodes_bbc: 0.000000\n"
            "io_decodes_roaring: 0.000000\n"
            "io_decodes_verbatim: 0.000000\n"
            "io_decodes_wah: 0.000000\n"
            "io_disk_reads: 0.000000\n"
            "io_pool_hits: 0.000000\n"
            "io_rescans: 0.000000\n"
            "io_scans: 0.000000\n"
            "io_seconds: 0.000000\n"
            "pool_bytes_used: 0.000000\n"
            "latency_eval_count: 0\n"
            "latency_eval_sum_us: 0.000\n"
            "latency_eval_p50_us: 0.000\n"
            "latency_eval_p95_us: 0.000\n"
            "latency_eval_p99_us: 0.000\n"
            "latency_queue_count: 0\n"
            "latency_queue_sum_us: 0.000\n"
            "latency_queue_p50_us: 0.000\n"
            "latency_queue_p95_us: 0.000\n"
            "latency_queue_p99_us: 0.000\n"
            "latency_rewrite_count: 0\n"
            "latency_rewrite_sum_us: 0.000\n"
            "latency_rewrite_p50_us: 0.000\n"
            "latency_rewrite_p95_us: 0.000\n"
            "latency_rewrite_p99_us: 0.000\n"
            "latency_total_count: 0\n"
            "latency_total_sum_us: 0.000\n"
            "latency_total_p50_us: 0.000\n"
            "latency_total_p95_us: 0.000\n"
            "latency_total_p99_us: 0.000\n");

  EXPECT_EQ(
      service.ExportMetrics(MetricsFormat::kJson),
      "{\"counters\":{\"corruptions_detected\":0,\"fetch_retries\":0,"
      "\"quarantined_bitmaps\":0,\"queries_cancelled\":0,"
      "\"queries_completed\":0,\"queries_deadline_exceeded\":0,"
      "\"queries_degraded\":0,\"queries_rejected_invalid\":0,"
      "\"queries_rejected_overload\":0,\"queries_shed_in_queue\":0,"
      "\"queries_submitted\":0,\"queries_traced\":0},"
      "\"gauges\":{\"breaker_open_seconds\":0.000000,"
      "\"breaker_opens\":0.000000,\"breaker_state\":0.000000,"
      "\"io_bytes_read\":0.000000,\"io_cpu_seconds\":0.000000,"
      "\"io_decode_seconds\":0.000000,\"io_decodes_bbc\":0.000000,"
      "\"io_decodes_roaring\":0.000000,\"io_decodes_verbatim\":0.000000,"
      "\"io_decodes_wah\":0.000000,\"io_disk_reads\":0.000000,"
      "\"io_pool_hits\":0.000000,\"io_rescans\":0.000000,"
      "\"io_scans\":0.000000,\"io_seconds\":0.000000,"
      "\"pool_bytes_used\":0.000000},"
      "\"histograms\":{"
      "\"latency_eval\":{\"count\":0,\"sum_us\":0.000,\"p50_us\":0.000,"
      "\"p95_us\":0.000,\"p99_us\":0.000},"
      "\"latency_queue\":{\"count\":0,\"sum_us\":0.000,\"p50_us\":0.000,"
      "\"p95_us\":0.000,\"p99_us\":0.000},"
      "\"latency_rewrite\":{\"count\":0,\"sum_us\":0.000,\"p50_us\":0.000,"
      "\"p95_us\":0.000,\"p99_us\":0.000},"
      "\"latency_total\":{\"count\":0,\"sum_us\":0.000,\"p50_us\":0.000,"
      "\"p95_us\":0.000,\"p99_us\":0.000}}}");
}

TEST_F(ObservabilityServiceTest, ExportMetricsReflectsCompletedQueries) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  QueryResult r = service
                      .Submit(ServiceQuery::Interval(IntervalQuery{0, 1, false})
                                  .WithTrace())
                      .get();
  ASSERT_TRUE(r.status.ok());
  service.Drain();

  const std::string text = service.ExportMetrics(MetricsFormat::kText);
  EXPECT_NE(text.find("queries_submitted: 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("queries_completed: 1\n"), std::string::npos);
  EXPECT_NE(text.find("queries_traced: 1\n"), std::string::npos);
  EXPECT_NE(text.find("io_scans: 2.000000\n"), std::string::npos);
  EXPECT_NE(text.find("io_disk_reads: 2.000000\n"), std::string::npos);
  EXPECT_NE(text.find("latency_total_count: 1\n"), std::string::npos);
  // The slow-query log renders the traced query with its span tree.
  EXPECT_NE(text.find("# slow queries (slowest first)\n"), std::string::npos);
  EXPECT_NE(text.find("interval [0,1] status=OK"), std::string::npos);
  EXPECT_NE(text.find("    query "), std::string::npos);

  // The JSON form carries the same counters.
  const std::string json = service.ExportMetrics(MetricsFormat::kJson);
  EXPECT_NE(json.find("\"queries_completed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"io_scans\":2.000000"), std::string::npos);

  // Stats() is now a derived view of the same registry: totals agree.
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.io.scans, 2u);
  EXPECT_EQ(stats.latency.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.queue_seconds_total +
                       stats.rewrite_seconds_total + stats.eval_seconds_total,
                   stats.latency.sum_seconds());
}

// ---------------------------------------------------------- differential --

// Tracing is observation-only: for every encoding scheme the same queries
// must produce bit-identical bitmaps/counts and identical IoStats with
// tracing on and off.
TEST_F(ObservabilityServiceTest, TracingIsObservationOnlyForAllEncodings) {
  for (EncodingKind kind : AllEncodingKinds()) {
    IndexConfig config;
    config.encoding = kind;
    BitmapIndex index = BuildIndex(column_, config).value();

    auto run = [&](bool traced) {
      VirtualClock clock;
      QueryService service(&index, DeterministicService(&clock));
      std::vector<QueryResult> results;
      for (uint32_t lo = 0; lo < 6; ++lo) {
        ServiceQuery q = ServiceQuery::Interval(IntervalQuery{lo, lo + 4,
                                                              false});
        if (traced) q.WithTrace();
        results.push_back(service.Submit(std::move(q)).get());
      }
      ServiceQuery members = ServiceQuery::Membership({1, 5, 9});
      if (traced) members.WithTrace();
      results.push_back(service.Submit(std::move(members)).get());
      ServiceQuery counted =
          ServiceQuery::Interval(IntervalQuery{2, 9, false}).CountOnly();
      if (traced) counted.WithTrace();
      results.push_back(service.Submit(std::move(counted)).get());
      return results;
    };

    std::vector<QueryResult> plain = run(false);
    std::vector<QueryResult> traced = run(true);
    ASSERT_EQ(plain.size(), traced.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      SCOPED_TRACE(std::string(EncodingKindName(kind)) + " query " +
                   std::to_string(i));
      ASSERT_TRUE(plain[i].status.ok()) << plain[i].status.ToString();
      ASSERT_TRUE(traced[i].status.ok()) << traced[i].status.ToString();
      EXPECT_EQ(plain[i].trace, nullptr);
      EXPECT_NE(traced[i].trace, nullptr);
      EXPECT_EQ(plain[i].count, traced[i].count);
      EXPECT_TRUE(plain[i].rows == traced[i].rows);
      // IoStats equality, field by field.
      EXPECT_EQ(plain[i].metrics.io.scans, traced[i].metrics.io.scans);
      EXPECT_EQ(plain[i].metrics.io.pool_hits,
                traced[i].metrics.io.pool_hits);
      EXPECT_EQ(plain[i].metrics.io.disk_reads,
                traced[i].metrics.io.disk_reads);
      EXPECT_EQ(plain[i].metrics.io.rescans, traced[i].metrics.io.rescans);
      EXPECT_EQ(plain[i].metrics.io.bytes_read,
                traced[i].metrics.io.bytes_read);
      EXPECT_DOUBLE_EQ(plain[i].metrics.io.io_seconds,
                       traced[i].metrics.io.io_seconds);
      EXPECT_DOUBLE_EQ(plain[i].metrics.io.decode_seconds,
                       traced[i].metrics.io.decode_seconds);
    }
  }
}

// ------------------------------------------------------- overhead guard --

// The disabled-tracing path must not open spans or construct sinks at all
// (and therefore pays zero tracing allocations per query): the accounting
// counters mirror BitvectorCopyStats-style zero-copy proofs.
TEST_F(ObservabilityServiceTest, DisabledTracingOpensZeroSpans) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  TraceSink::ResetAccounting();
  for (uint32_t lo = 0; lo < 8; ++lo) {
    QueryResult r =
        service.Submit(ServiceQuery::Interval(IntervalQuery{lo, lo + 3, false}))
            .get();
    ASSERT_TRUE(r.status.ok());
  }
  service.Drain();
  EXPECT_EQ(TraceSink::SinksCreated(), 0u);
  EXPECT_EQ(TraceSink::SpansStarted(), 0u);

  // Control: one traced query registers a sink and its spans.
  QueryResult traced =
      service
          .Submit(
              ServiceQuery::Interval(IntervalQuery{0, 3, false}).WithTrace())
          .get();
  ASSERT_TRUE(traced.status.ok());
  EXPECT_EQ(TraceSink::SinksCreated(), 1u);
  EXPECT_EQ(TraceSink::SpansStarted(), traced.trace->SpanCount());
}

// -------------------------------------------------------------- writable --

// Writable-mode observability: durability spans on the write path, the
// delta_merge span on the read path, and the extra metric lines — all
// registered only when the service fronts an IndexSnapshotProvider, so
// the read-only goldens above stay byte-identical.
class WritableObservabilityTest : public ::testing::Test {
 protected:
  std::string FreshDir(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
  }

  std::unique_ptr<WritableBitmapIndex> MakeWritable(const std::string& name) {
    ColumnSpec spec;
    spec.rows = 200;
    spec.cardinality = 8;
    spec.zipf_z = 0.7;
    spec.seed = 5;
    Column column = GenerateZipfColumn(spec);
    IndexConfig config;
    config.encoding = EncodingKind::kEquality;
    auto created = WritableBitmapIndex::Create(FreshDir(name), column, config);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  }

  // 4 inserts + 1 update + 1 delete = 6 ops.
  UpdateBatch SixOpBatch() {
    UpdateBatch b;
    b.inserts = {1, 3, 0, 7};
    b.updates = {{2, 0, 5}};
    b.deletes = {9};
    return b;
  }

  ServiceOptions DeterministicService(ClockInterface* clock) const {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = 64;
    options.cache_shards = 2;
    options.clock = clock;
    return options;
  }
};

TEST_F(WritableObservabilityTest, WriteSideSpansCarryDurabilityTags) {
  std::unique_ptr<WritableBitmapIndex> index = MakeWritable("obs_spans");
  VirtualClock clock;

  // ApplyBatch under a caller-owned sink: one wal_append span whose bytes
  // tag is exactly what the durability counter accumulated.
  TraceSink write_sink(&clock, "write");
  ASSERT_TRUE(index->ApplyBatch(SixOpBatch(), &write_sink).ok());
  TraceSpan write_root = write_sink.Finish();
  const TraceSpan* append = write_root.Find("wal_append");
  ASSERT_NE(append, nullptr) << write_root.Render();
  EXPECT_EQ(append->TagValue("seq"), "1");
  EXPECT_EQ(append->TagValue("ops"), "6");
  EXPECT_EQ(append->TagValue("bytes"),
            std::to_string(index->durability().wal_bytes));

  // Compact under a sink: compact wraps fold (tagged with the overlay
  // size), the checkpoint commit, and the WAL truncation, in that order.
  TraceSink compact_sink(&clock, "maintenance");
  ASSERT_TRUE(index->Compact(&compact_sink).ok());
  TraceSpan compact_root = compact_sink.Finish();
  const TraceSpan* compact = compact_root.Find("compact");
  ASSERT_NE(compact, nullptr) << compact_root.Render();
  ASSERT_EQ(compact->children.size(), 3u);
  EXPECT_EQ(compact->children[0].name, "fold");
  EXPECT_EQ(compact->children[0].TagValue("delta_ops"), "6");
  EXPECT_EQ(compact->children[1].name, "checkpoint");
  EXPECT_EQ(compact->children[1].TagValue("seq"), "1");
  EXPECT_EQ(compact->children[2].name, "wal_truncate");
}

TEST_F(WritableObservabilityTest, DeltaMergeSpanTracksOverlayLifecycle) {
  std::unique_ptr<WritableBitmapIndex> index = MakeWritable("obs_merge");
  // Delete-free batch: a tombstone would ride along after compaction and
  // keep the merge stage alive; inserts and updates fold away completely.
  UpdateBatch batch;
  batch.inserts = {1, 3, 0, 7};
  batch.updates = {{2, 0, 5}};
  ASSERT_TRUE(index->ApplyBatch(std::move(batch)).ok());

  VirtualClock clock;
  QueryService service(index.get(), DeterministicService(&clock));

  // Overlay non-trivial: the traced eval carries a delta_merge span whose
  // tags are the override/append workload the merge visited.
  QueryResult merged =
      service
          .Submit(ServiceQuery::Interval(IntervalQuery{0, 7, false})
                      .WithTrace())
          .get();
  ASSERT_TRUE(merged.status.ok()) << merged.status.ToString();
  ASSERT_NE(merged.trace, nullptr);
  const TraceSpan* merge = merged.trace->Find("delta_merge");
  ASSERT_NE(merge, nullptr) << merged.trace->Render();
  EXPECT_EQ(merge->TagValue("overrides"), "1");
  EXPECT_EQ(merge->TagValue("appended"), "4");

  // After compaction the overlay is trivial again and the merge stage
  // disappears from the trace; the answer must not change.
  ASSERT_TRUE(service.CompactNow().ok());
  QueryResult folded =
      service
          .Submit(ServiceQuery::Interval(IntervalQuery{0, 7, false})
                      .WithTrace())
          .get();
  ASSERT_TRUE(folded.status.ok()) << folded.status.ToString();
  ASSERT_NE(folded.trace, nullptr);
  EXPECT_EQ(folded.trace->Find("delta_merge"), nullptr)
      << folded.trace->Render();
  EXPECT_TRUE(merged.rows == folded.rows);  // merge and fold agree
}

TEST_F(WritableObservabilityTest, WritableMetricsAppearOnlyInWritableMode) {
  std::unique_ptr<WritableBitmapIndex> index = MakeWritable("obs_metrics");
  VirtualClock clock;
  QueryService service(index.get(), DeterministicService(&clock));

  ASSERT_TRUE(index->ApplyBatch(SixOpBatch()).ok());

  // The durability gauges reflect the provider at export time.
  std::string text = service.ExportMetrics(MetricsFormat::kText);
  EXPECT_NE(text.find("compactions_shed: 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("wal_appends: 1.000000\n"), std::string::npos);
  EXPECT_NE(text.find("recovered_batches: 0.000000\n"), std::string::npos);
  EXPECT_NE(text.find("truncated_tail_records: 0.000000\n"),
            std::string::npos);
  EXPECT_NE(text.find("compactions: 0.000000\n"), std::string::npos);
  EXPECT_NE(text.find("delta_rows: 6.000000\n"), std::string::npos);
  EXPECT_NE(text.find("wal_bytes: "), std::string::npos);

  ASSERT_TRUE(service.CompactNow().ok());
  text = service.ExportMetrics(MetricsFormat::kText);
  EXPECT_NE(text.find("compactions: 1.000000\n"), std::string::npos) << text;
  EXPECT_NE(text.find("delta_rows: 0.000000\n"), std::string::npos);

  const std::string json = service.ExportMetrics(MetricsFormat::kJson);
  EXPECT_NE(json.find("\"compactions\":1.000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"compactions_shed\":0"), std::string::npos);

  // A read-only service never registers the durability metrics — the
  // fresh-service golden above depends on it; double-check here.
  ColumnSpec spec;
  spec.rows = 100;
  spec.cardinality = 8;
  Column column = GenerateZipfColumn(spec);
  BitmapIndex read_only = BuildIndex(column, IndexConfig{}).value();
  VirtualClock ro_clock;
  QueryService ro_service(&read_only, DeterministicService(&ro_clock));
  const std::string ro_text = ro_service.ExportMetrics(MetricsFormat::kText);
  EXPECT_EQ(ro_text.find("wal_appends"), std::string::npos);
  EXPECT_EQ(ro_text.find("delta_rows"), std::string::npos);
  EXPECT_EQ(ro_text.find("compactions"), std::string::npos);
}

TEST_F(WritableObservabilityTest, BackgroundCompactionShedsUnderOpenBreaker) {
  std::unique_ptr<WritableBitmapIndex> index = MakeWritable("obs_shed");

  // Real clock (the compaction loop sleeps on it), tight interval, and a
  // breaker tripped by fetch failures: the loop must skip folding and
  // count the sheds instead of competing with an ailing store for I/O.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 1000000;  // every fetch fails
  FaultInjector injector(fault_opts);

  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 64;
  options.cache_shards = 2;
  options.fault_injector = &injector;
  options.max_fetch_retries = 0;
  options.compaction_interval_seconds = 1e-3;
  options.brownout.window = 4;
  options.brownout.min_samples = 1;   // one failure opens the breaker
  options.brownout.open_threshold = 1.0;
  options.brownout.open_seconds = 60.0;  // stays open for the whole test
  QueryService service(index.get(), options);

  // Trip the breaker with a query whose fetches all fail. (A sub-range:
  // the full domain rewrites to a fetch-free expression.)
  QueryResult r =
      service.Submit(ServiceQuery::Interval(IntervalQuery{1, 5, false})).get();
  EXPECT_EQ(r.status.code(), Status::Code::kUnavailable)
      << r.status.ToString();

  // Only now make work for the compactor: with the breaker open, every
  // tick must shed the fold instead of running it.
  ASSERT_TRUE(index->ApplyBatch(SixOpBatch()).ok());

  // The loop fires every millisecond; wait until it sheds at least once.
  const std::string target = "compactions_shed: ";
  for (int i = 0; i < 2000; ++i) {
    const std::string text = service.ExportMetrics(MetricsFormat::kText);
    const size_t pos = text.find(target);
    ASSERT_NE(pos, std::string::npos);
    if (text[pos + target.size()] != '0') break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string text = service.ExportMetrics(MetricsFormat::kText);
  const size_t pos = text.find(target);
  EXPECT_NE(text[pos + target.size()], '0') << text;
  // Nothing was folded: the overlay still holds the batch.
  EXPECT_NE(text.find("compactions: 0.000000\n"), std::string::npos);
  EXPECT_EQ(index->PendingDeltaOps(), 6u);
}

}  // namespace
}  // namespace bix
