// Mechanical verification of the paper's analytical results: Theorem 3.1,
// Theorem 4.1, Table 1, and the Section 4.2 update costs. Dominance claims
// among the three basic schemes come from the exact cost model; optimality
// claims ("no complete scheme dominates") come from exhaustive search over
// abstract encoding schemes for small cardinalities.

#include <gtest/gtest.h>

#include "theory/cost_model.h"
#include "theory/optimality.h"
#include "theory/update_cost.h"

namespace bix {
namespace {

// --- Exact cost model ------------------------------------------------------

TEST(CostModelTest, SpaceOfBasicSchemes) {
  for (uint32_t c : {10u, 50u, 200u}) {
    EXPECT_EQ(ComputeCost(EncodingKind::kEquality, c, QueryClass::kEq)
                  .space_bitmaps,
              c);
    EXPECT_EQ(
        ComputeCost(EncodingKind::kRange, c, QueryClass::kEq).space_bitmaps,
        c - 1);
    EXPECT_EQ(ComputeCost(EncodingKind::kInterval, c, QueryClass::kEq)
                  .space_bitmaps,
              (c + 1) / 2);
  }
}

TEST(CostModelTest, EqualityEncodingScanCounts) {
  // E answers every equality query in exactly one scan.
  for (uint32_t c : {4u, 10u, 50u}) {
    EXPECT_DOUBLE_EQ(
        ComputeCost(EncodingKind::kEquality, c, QueryClass::kEq).expected_scans,
        1.0);
  }
}

TEST(CostModelTest, RangeEncodingScanCounts) {
  // R: one-sided ranges take exactly 1 scan; two-sided take 2; equality
  // averages 2 - 2/C (endpoints take 1).
  for (uint32_t c : {6u, 10u, 50u}) {
    EXPECT_DOUBLE_EQ(
        ComputeCost(EncodingKind::kRange, c, QueryClass::k1Rq).expected_scans,
        1.0);
    EXPECT_DOUBLE_EQ(
        ComputeCost(EncodingKind::kRange, c, QueryClass::k2Rq).expected_scans,
        2.0);
    EXPECT_NEAR(
        ComputeCost(EncodingKind::kRange, c, QueryClass::kEq).expected_scans,
        2.0 - 2.0 / c, 1e-12);
  }
}

TEST(CostModelTest, IntervalEncodingScanCounts) {
  // I: every query class at most 2 scans; 1RQ averages below 2 because
  // "A <= m" and width-(m+1) two-sided queries take one scan.
  for (uint32_t c : {6u, 10u, 50u, 51u}) {
    const double eq =
        ComputeCost(EncodingKind::kInterval, c, QueryClass::kEq).expected_scans;
    const double rq1 =
        ComputeCost(EncodingKind::kInterval, c, QueryClass::k1Rq).expected_scans;
    const double rq2 =
        ComputeCost(EncodingKind::kInterval, c, QueryClass::k2Rq).expected_scans;
    EXPECT_LE(eq, 2.0);
    EXPECT_LE(rq1, 2.0);
    EXPECT_LE(rq2, 2.0);
    EXPECT_LT(rq2, 2.0);  // the width-m queries take one scan
  }
  // C >= 4: every equality query takes exactly 2 scans.
  EXPECT_DOUBLE_EQ(
      ComputeCost(EncodingKind::kInterval, 14, QueryClass::kEq).expected_scans,
      2.0);
}

TEST(CostModelTest, EqualityRangeHybridIsFastEverywhere) {
  // ER: 1 scan for equalities, <= 2 for ranges, at ~2x space.
  const uint32_t c = 20;
  EXPECT_DOUBLE_EQ(
      ComputeCost(EncodingKind::kEqualityRange, c, QueryClass::kEq)
          .expected_scans,
      1.0);
  EXPECT_LE(ComputeCost(EncodingKind::kEqualityRange, c, QueryClass::kRq)
                .expected_scans,
            2.0);
  EXPECT_EQ(ComputeCost(EncodingKind::kEqualityRange, c, QueryClass::kEq)
                .space_bitmaps,
            c + c - 3);
}

// --- Theorem 3.1 / 4.1 dominance directions --------------------------------

TEST(DominanceTest, RangeDominatesEqualityOnRangeClasses) {
  // Theorem 3.1(6): E is not optimal for 1RQ/2RQ/RQ — R dominates it.
  for (uint32_t c = 4; c <= 40; ++c) {
    for (QueryClass q : {QueryClass::k1Rq, QueryClass::k2Rq, QueryClass::kRq}) {
      EXPECT_TRUE(Dominates(ComputeCost(EncodingKind::kRange, c, q),
                            ComputeCost(EncodingKind::kEquality, c, q)))
          << "c=" << c << " " << QueryClassName(q);
    }
  }
}

TEST(DominanceTest, IntervalDominatesRangeOnTwoSided) {
  // Theorem 3.1(3): R is not optimal for 2RQ — I dominates (half the space,
  // no worse expected scans).
  for (uint32_t c = 5; c <= 40; ++c) {
    EXPECT_TRUE(
        Dominates(ComputeCost(EncodingKind::kInterval, c, QueryClass::k2Rq),
                  ComputeCost(EncodingKind::kRange, c, QueryClass::k2Rq)))
        << "c=" << c;
  }
}

TEST(DominanceTest, NeitherBasicSchemeDominatesIntervalAnywhere) {
  for (uint32_t c = 4; c <= 40; ++c) {
    for (QueryClass q : {QueryClass::kEq, QueryClass::k1Rq, QueryClass::k2Rq,
                         QueryClass::kRq}) {
      EXPECT_FALSE(Dominates(ComputeCost(EncodingKind::kEquality, c, q),
                             ComputeCost(EncodingKind::kInterval, c, q)));
      EXPECT_FALSE(Dominates(ComputeCost(EncodingKind::kRange, c, q),
                             ComputeCost(EncodingKind::kInterval, c, q)));
    }
  }
}

// --- Abstract schemes -------------------------------------------------------

TEST(AbstractSchemeTest, MaterializationMatchesDefinition) {
  AbstractScheme r = AbstractFromEncoding(EncodingKind::kRange, 5);
  // R^v = [0, v]: masks 0b00001, 0b00011, 0b00111, 0b01111.
  ASSERT_EQ(r.bitmaps.size(), 4u);
  EXPECT_EQ(r.bitmaps[0], 0b00001u);
  EXPECT_EQ(r.bitmaps[1], 0b00011u);
  EXPECT_EQ(r.bitmaps[2], 0b00111u);
  EXPECT_EQ(r.bitmaps[3], 0b01111u);
}

TEST(AbstractSchemeTest, CompletenessDetection) {
  for (EncodingKind kind : AllEncodingKinds()) {
    for (uint32_t c = 2; c <= 12; ++c) {
      EXPECT_TRUE(IsComplete(AbstractFromEncoding(kind, c)))
          << EncodingKindName(kind) << " c=" << c;
    }
  }
  // A scheme that cannot distinguish values 2 and 3 is incomplete.
  AbstractScheme bad;
  bad.cardinality = 4;
  bad.bitmaps = {0b0001, 0b0010};
  EXPECT_FALSE(IsComplete(bad));
}

TEST(AbstractSchemeTest, MinScansMatchesHandDerivedCases) {
  AbstractScheme r = AbstractFromEncoding(EncodingKind::kRange, 5);
  // "A = 0" = R^0: one scan. "A = 2" = R^2 xor R^1: two scans.
  EXPECT_EQ(MinScans(r, 0b00001), 1u);
  EXPECT_EQ(MinScans(r, 0b00100), 2u);
  // "A <= 2": one scan. "1 <= A <= 3": two. Whole domain: zero.
  EXPECT_EQ(MinScans(r, 0b00111), 1u);
  EXPECT_EQ(MinScans(r, 0b01110), 2u);
  EXPECT_EQ(MinScans(r, 0b11111), 0u);
}

TEST(AbstractSchemeTest, AbstractTimeNeverExceedsImplementationTime) {
  // MinScans is the information-theoretic optimum; our rewrite must use at
  // least that many scans and the two must agree for the basic schemes
  // (whose expressions the paper proves minimal).
  for (EncodingKind kind : BasicEncodingKinds()) {
    for (uint32_t c = 3; c <= 10; ++c) {
      AbstractScheme abs = AbstractFromEncoding(kind, c);
      for (QueryClass q : {QueryClass::kEq, QueryClass::k1Rq,
                           QueryClass::k2Rq}) {
        if (EnumerateQueries(q, c).empty()) continue;  // 2RQ empty at c=3
        const double abstract_time = ExpectedScans(abs, q);
        const double impl_time = ComputeCost(kind, c, q).expected_scans;
        EXPECT_LE(abstract_time, impl_time + 1e-12)
            << EncodingKindName(kind) << " c=" << c << " " << QueryClassName(q);
        EXPECT_NEAR(abstract_time, impl_time, 1e-9)
            << EncodingKindName(kind) << " c=" << c << " " << QueryClassName(q);
      }
    }
  }
}

// --- Exhaustive optimality search (small cardinalities) --------------------

TEST(OptimalitySearchTest, IntervalOptimalFor2RqSmallC) {
  // Theorem 4.1(3): no complete scheme dominates I for 2RQ.
  for (uint32_t c = 4; c <= 6; ++c) {
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kInterval, c);
    auto dom = FindDominatingScheme(target, QueryClass::k2Rq);
    EXPECT_FALSE(dom.has_value()) << "c=" << c;
  }
}

TEST(OptimalitySearchTest, IntervalOptimalFor1RqMostSmallC) {
  for (uint32_t c : {4u, 6u}) {
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kInterval, c);
    EXPECT_FALSE(FindDominatingScheme(target, QueryClass::k1Rq).has_value())
        << "c=" << c;
  }
}

TEST(OptimalitySearchTest, IntervalNotOptimalFor1RqAtC5UnderExactModel) {
  // Documented deviation from Theorem 4.1(2): under our exact model
  // (uniform expectation over the proper one-sided queries, scans =
  // information-theoretic minimum bitmaps read), the complete scheme
  // {{0}, {0,1,2}, {0,1,3}} answers the 6 proper 1RQ queries of C = 5
  // ([0,1],[0,2],[0,3] and [1,4],[2,4],[3,4]) in (2+1+2+1+2+1)/6 = 1.5
  // expected scans with the same 3 bitmaps as interval encoding
  // (10/6 = 1.667 expected). The paper's proof lives in the
  // unavailable tech report [CI98a] and may weight queries or cost
  // complement-only results differently; we record the counterexample
  // rather than hide it. See EXPERIMENTS.md ("Theory deviations").
  AbstractScheme target = AbstractFromEncoding(EncodingKind::kInterval, 5);
  auto dom = FindDominatingScheme(target, QueryClass::k1Rq);
  ASSERT_TRUE(dom.has_value());
  EXPECT_TRUE(IsComplete(*dom));
  EXPECT_EQ(dom->space(), 3u);
  EXPECT_NEAR(ExpectedScans(*dom, QueryClass::k1Rq), 1.5, 1e-12);
  EXPECT_NEAR(ExpectedScans(target, QueryClass::k1Rq), 10.0 / 6.0, 1e-12);
}

TEST(OptimalitySearchTest, EqualityOptimalForEqSmallC) {
  // Theorem 3.1(5): E optimal for EQ. Note Space(E) = c, so the search
  // space is larger; keep c small.
  for (uint32_t c = 3; c <= 5; ++c) {
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kEquality, c);
    EXPECT_FALSE(FindDominatingScheme(target, QueryClass::kEq).has_value())
        << "c=" << c;
  }
}

TEST(OptimalitySearchTest, RangeOptimalForEqIffCAtMost5) {
  // Theorem 3.1(1): R optimal for EQ iff C <= 5.
  for (uint32_t c = 3; c <= 5; ++c) {
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kRange, c);
    EXPECT_FALSE(FindDominatingScheme(target, QueryClass::kEq).has_value())
        << "c=" << c;
  }
  {
    const uint32_t c = 6;
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kRange, c);
    auto dom = FindDominatingScheme(target, QueryClass::kEq);
    ASSERT_TRUE(dom.has_value());
    EXPECT_TRUE(IsComplete(*dom));
    EXPECT_LE(dom->space(), target.space());
  }
}

TEST(OptimalitySearchTest, RangeOptimalFor1RqSmallC) {
  // Theorem 3.1(2).
  for (uint32_t c = 3; c <= 5; ++c) {
    AbstractScheme target = AbstractFromEncoding(EncodingKind::kRange, c);
    EXPECT_FALSE(FindDominatingScheme(target, QueryClass::k1Rq).has_value())
        << "c=" << c;
  }
}

// --- Theorem 4.1(1): I not optimal for EQ when C >= 14 ----------------------

TEST(PairSchemeTest, PairSchemeIsCompleteAndTwoScan) {
  for (uint32_t c : {6u, 10u, 14u, 20u}) {
    AbstractScheme pair = PairIntersectionScheme(c);
    EXPECT_TRUE(IsComplete(pair));
    EXPECT_NEAR(ExpectedScans(pair, QueryClass::kEq), 2.0, 1e-12);
  }
}

TEST(PairSchemeTest, DominatesIntervalForEqAtC14) {
  // 6 bitmaps vs interval's 7, equal EQ time (2.0) -> dominates.
  const uint32_t c = 14;
  AbstractScheme interval = AbstractFromEncoding(EncodingKind::kInterval, c);
  AbstractScheme pair = PairIntersectionScheme(c);
  EXPECT_LT(pair.space(), interval.space());
  SpaceTimeCost pair_cost{pair.space(), ExpectedScans(pair, QueryClass::kEq)};
  SpaceTimeCost interval_cost{interval.space(),
                              ExpectedScans(interval, QueryClass::kEq)};
  EXPECT_TRUE(Dominates(pair_cost, interval_cost));
}

TEST(PairSchemeTest, DoesNotBeatIntervalSpaceBelowC13) {
  // For C <= 12, k(k-1)/2 >= C forces k >= ceil(C/2), so the pair scheme
  // cannot undercut interval encoding's space (consistent with the paper's
  // C >= 14 threshold; C = 13 is a boundary case discussed in
  // EXPERIMENTS.md).
  for (uint32_t c = 4; c <= 12; ++c) {
    EXPECT_GE(PairIntersectionScheme(c).space(),
              AbstractFromEncoding(EncodingKind::kInterval, c).space())
        << c;
  }
}

// --- Update costs (Section 4.2) ---------------------------------------------

TEST(UpdateCostTest, EqualityTouchesExactlyOne) {
  for (uint32_t c : {4u, 10u, 50u}) {
    UpdateCost cost = ComputeUpdateCost(EncodingKind::kEquality, c);
    EXPECT_EQ(cost.best, 1u);
    EXPECT_EQ(cost.worst, 1u);
    EXPECT_DOUBLE_EQ(cost.expected, 1.0);
  }
}

TEST(UpdateCostTest, RangeMatchesPaperFigures) {
  // Value v sets R^v..R^{C-2}: worst C-1 (v = 0), best 0 (v = C-1, no
  // bitmap touched -- the paper counts "1" for the record insert itself;
  // we count touched bitmaps), expected (C-1)/2 under uniform values.
  const uint32_t c = 50;
  UpdateCost cost = ComputeUpdateCost(EncodingKind::kRange, c);
  EXPECT_EQ(cost.worst, c - 1);
  EXPECT_EQ(cost.best, 0u);
  EXPECT_NEAR(cost.expected, (c - 1) / 2.0, 0.5);
}

TEST(UpdateCostTest, IntervalMatchesPaperFigures) {
  // Worst floor(C/2) (values inside every window), expected ~C/4.
  const uint32_t c = 50;
  UpdateCost cost = ComputeUpdateCost(EncodingKind::kInterval, c);
  EXPECT_EQ(cost.worst, c / 2);
  EXPECT_EQ(cost.best, 0u);
  EXPECT_NEAR(cost.expected, c / 4.0, 1.0);
}

TEST(UpdateCostTest, OrderingEIsBestIIsMiddleRIsWorst) {
  for (uint32_t c : {10u, 50u, 200u}) {
    const double e = ComputeUpdateCost(EncodingKind::kEquality, c).expected;
    const double i = ComputeUpdateCost(EncodingKind::kInterval, c).expected;
    const double r = ComputeUpdateCost(EncodingKind::kRange, c).expected;
    EXPECT_LT(e, i);
    EXPECT_LT(i, r);
  }
}

// --- Deferred maintenance (DESIGN.md section 15) ----------------------------

TEST(DeltaMaintenanceCostTest, InplaceTouchesMatchUpdateCost) {
  for (EncodingKind kind : AllEncodingKinds()) {
    for (uint32_t c : {8u, 50u}) {
      EXPECT_DOUBLE_EQ(ComputeDeltaMaintenanceCost(kind, c, 1).inplace_touches,
                       ComputeUpdateCost(kind, c).expected)
          << EncodingKindName(kind) << " c=" << c;
    }
  }
}

TEST(DeltaMaintenanceCostTest, AmortizedCostDecreasesTowardInplace) {
  // The per-record share of the fold's fixed per-slot work shrinks as 1/N:
  // strictly decreasing in the compaction batch size, never below the
  // in-place expectation it converges to.
  const uint32_t c = 50;
  for (EncodingKind kind : AllEncodingKinds()) {
    double prev = ComputeDeltaMaintenanceCost(kind, c, 1).amortized_touches;
    for (uint64_t n : {10u, 100u, 10000u}) {
      const DeltaMaintenanceCost cost = ComputeDeltaMaintenanceCost(kind, c, n);
      EXPECT_LT(cost.amortized_touches, prev) << EncodingKindName(kind);
      EXPECT_GT(cost.amortized_touches, cost.inplace_touches);
      prev = cost.amortized_touches;
    }
    // At N = 10000 the fixed share is within one touch of fully amortized.
    EXPECT_NEAR(prev, ComputeUpdateCost(kind, c).expected, 1.0);
  }
}

TEST(DeltaMaintenanceCostTest, WalBytesMeasureTheRealFraming) {
  // frame header (len + crc = 8) + fixed payload (seq, first_rid, counts =
  // 28) + one update record (rid + old + new = 16). Measured through the
  // actual encoder, identical across encodings and cardinalities.
  const DeltaMaintenanceCost cost =
      ComputeDeltaMaintenanceCost(EncodingKind::kEquality, 8, 1);
  EXPECT_EQ(cost.wal_bytes_per_record, 52u);
  EXPECT_EQ(
      ComputeDeltaMaintenanceCost(EncodingKind::kRange, 500, 64)
          .wal_bytes_per_record,
      cost.wal_bytes_per_record);
}

}  // namespace
}  // namespace bix
