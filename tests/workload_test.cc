#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "query/membership_rewrite.h"
#include "workload/column_gen.h"
#include "workload/query_gen.h"
#include "workload/scan_baseline.h"
#include "workload/zipf.h"

namespace bix {
namespace {

TEST(ZipfTest, UniformWhenZZero) {
  Rng rng(1);
  ZipfDistribution dist(10, 0.0, &rng);
  for (uint32_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(dist.Probability(v), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  Rng rng(2);
  for (double z : {0.0, 1.0, 2.0, 3.0}) {
    ZipfDistribution dist(50, z, &rng);
    double sum = 0.0;
    for (uint32_t v = 0; v < 50; ++v) sum += dist.Probability(v);
    EXPECT_NEAR(sum, 1.0, 1e-9) << z;
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  // With z = 3, the top value should carry most of the probability mass.
  Rng rng(3);
  ZipfDistribution dist(50, 3.0, &rng);
  double max_p = 0.0;
  for (uint32_t v = 0; v < 50; ++v) max_p = std::max(max_p, dist.Probability(v));
  EXPECT_GT(max_p, 0.8);
}

TEST(ZipfTest, SampleFrequenciesTrackProbabilities) {
  Rng rng(4);
  ZipfDistribution dist(10, 1.0, &rng);
  std::vector<uint64_t> counts(10, 0);
  const int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) ++counts[dist.Sample(&rng)];
  for (uint32_t v = 0; v < 10; ++v) {
    const double observed = static_cast<double>(counts[v]) / kSamples;
    EXPECT_NEAR(observed, dist.Probability(v), 0.01) << v;
  }
}

TEST(ZipfTest, RankToValueAssignmentIsSeedDependent) {
  // Different seeds should (generically) put the heavy value elsewhere.
  Rng rng_a(5), rng_b(6);
  ZipfDistribution a(50, 2.0, &rng_a), b(50, 2.0, &rng_b);
  uint32_t top_a = 0, top_b = 0;
  for (uint32_t v = 0; v < 50; ++v) {
    if (a.Probability(v) > a.Probability(top_a)) top_a = v;
    if (b.Probability(v) > b.Probability(top_b)) top_b = v;
  }
  EXPECT_NE(top_a, top_b);
}

TEST(ColumnGenTest, RespectsSpec) {
  Column col = GenerateZipfColumn(
      {.rows = 10'000, .cardinality = 50, .zipf_z = 1.0, .seed = 11});
  EXPECT_EQ(col.row_count(), 10'000u);
  EXPECT_EQ(col.cardinality, 50u);
  for (uint32_t v : col.values) EXPECT_LT(v, 50u);
}

TEST(ColumnGenTest, DeterministicForSeed) {
  ColumnSpec spec{.rows = 1000, .cardinality = 20, .zipf_z = 1.0, .seed = 3};
  EXPECT_EQ(GenerateZipfColumn(spec).values, GenerateZipfColumn(spec).values);
}

TEST(ColumnGenTest, PaperExampleMatchesFigure1a) {
  Column col = PaperExampleColumn();
  EXPECT_EQ(col.row_count(), 12u);
  EXPECT_EQ(col.cardinality, 10u);
  EXPECT_EQ(col.values[0], 3u);
  EXPECT_EQ(col.values[7], 0u);
}

TEST(QueryGenTest, EightPaperSets) {
  auto sets = GeneratePaperQuerySets(50, 42);
  ASSERT_EQ(sets.size(), 8u);
  // The specs must be the paper's: (1,0),(1,1),(2,0),(2,1),(2,2),
  // (5,0),(5,3),(5,5).
  EXPECT_EQ(sets[0].spec.n_int, 1u);
  EXPECT_EQ(sets[0].spec.n_equ, 0u);
  EXPECT_EQ(sets[1].spec.n_equ, 1u);
  EXPECT_EQ(sets[4].spec.n_int, 2u);
  EXPECT_EQ(sets[4].spec.n_equ, 2u);
  EXPECT_EQ(sets[6].spec.n_int, 5u);
  EXPECT_EQ(sets[6].spec.n_equ, 3u);
  for (const auto& set : sets) EXPECT_EQ(set.queries.size(), 10u);
}

class QueryGenSpecSweep : public ::testing::TestWithParam<QuerySetSpec> {};

TEST_P(QueryGenSpecSweep, GeneratedQueriesMatchSpecExactly) {
  const QuerySetSpec spec = GetParam();
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    MembershipQuery q = GenerateMembershipQuery(spec, 50, &rng);
    auto intervals = MembershipToIntervals(q.values);
    ASSERT_EQ(intervals.size(), spec.n_int);
    uint32_t n_equ = 0;
    for (const auto& iv : intervals) {
      EXPECT_LT(iv.hi, 50u);
      if (iv.IsEquality()) ++n_equ;
    }
    EXPECT_EQ(n_equ, spec.n_equ);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSpecs, QueryGenSpecSweep,
    ::testing::Values(QuerySetSpec{1, 0}, QuerySetSpec{1, 1},
                      QuerySetSpec{2, 0}, QuerySetSpec{2, 1},
                      QuerySetSpec{2, 2}, QuerySetSpec{5, 0},
                      QuerySetSpec{5, 3}, QuerySetSpec{5, 5}),
    [](const ::testing::TestParamInfo<QuerySetSpec>& info) {
      return "Nint" + std::to_string(info.param.n_int) + "Nequ" +
             std::to_string(info.param.n_equ);
    });

TEST(QueryGenTest, WorksAtCardinality200) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    MembershipQuery q = GenerateMembershipQuery({5, 3}, 200, &rng);
    EXPECT_EQ(MembershipToIntervals(q.values).size(), 5u);
  }
}

TEST(ScanBaselineTest, IntervalSelectsExactRows) {
  Column col = PaperExampleColumn();
  Bitvector r = NaiveEvaluateInterval(col, {2, 5});
  // Values: 3,2,1,2,8,2,9,0,7,5,6,4 -> rows with value in [2,5]:
  // 0(3),1(2),3(2),5(2),9(5),11(4).
  EXPECT_EQ(r, Bitvector::FromPositions(12, {0, 1, 3, 5, 9, 11}));
}

TEST(ScanBaselineTest, MembershipSelectsExactRows) {
  Column col = PaperExampleColumn();
  Bitvector r = NaiveEvaluateMembership(col, {0, 9});
  EXPECT_EQ(r, Bitvector::FromPositions(12, {6, 7}));
}

}  // namespace
}  // namespace bix
