#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "storage/bitmap_cache.h"
#include "storage/bitmap_store.h"
#include "storage/fault_injector.h"
#include "storage/wal.h"
#include "util/rng.h"

namespace bix {
namespace {

Bitvector MakeBitmap(uint64_t n, uint64_t seed, double density = 0.3) {
  Rng rng(seed);
  Bitvector bv(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

TEST(BitmapStoreTest, UncompressedRoundtrip) {
  BitmapStore store;
  Bitvector bv = MakeBitmap(1000, 1);
  store.PutUncompressed({1, 0}, bv);
  EXPECT_TRUE(store.Contains({1, 0}));
  EXPECT_FALSE(store.Contains({1, 1}));
  EXPECT_EQ(store.Materialize({1, 0}), bv);
  EXPECT_EQ(store.StoredBytes({1, 0}), 125u);
  EXPECT_EQ(store.TotalStoredBytes(), 125u);
  EXPECT_EQ(store.BitmapCount(), 1u);
}

TEST(BitmapStoreTest, CompressedRoundtrip) {
  BitmapStore store;
  Bitvector sparse(100'000);
  sparse.Set(7);
  sparse.Set(99'999);
  store.PutCompressed({1, 0}, sparse);
  EXPECT_EQ(store.Materialize({1, 0}), sparse);
  EXPECT_LT(store.StoredBytes({1, 0}), 100u);
}

TEST(BitmapStoreTest, KeysAreComponentScoped) {
  BitmapStore store;
  Bitvector a = MakeBitmap(100, 1), b = MakeBitmap(100, 2);
  store.PutUncompressed({1, 5}, a);
  store.PutUncompressed({2, 5}, b);
  EXPECT_EQ(store.Materialize({1, 5}), a);
  EXPECT_EQ(store.Materialize({2, 5}), b);
}

TEST(BitmapStoreTest, TryVariantsReportMissingKeysAsTypedErrors) {
  BitmapStore store;
  Bitvector bv = MakeBitmap(800, 3);
  store.PutUncompressed({1, 0}, bv);

  EXPECT_EQ(store.TryStoredBytes({1, 0}).value(), store.StoredBytes({1, 0}));
  EXPECT_EQ(store.TryMaterialize({1, 0}).value(), bv);
  EXPECT_EQ(store.TryGetBlob({1, 0}).value(), &store.GetBlob({1, 0}));

  for (BitmapKey missing : {BitmapKey{1, 1}, BitmapKey{2, 0}}) {
    Result<uint64_t> sb = store.TryStoredBytes(missing);
    ASSERT_FALSE(sb.ok());
    EXPECT_EQ(sb.status().code(), Status::Code::kInvalidArgument);
    EXPECT_FALSE(store.TryMaterialize(missing).ok());
    EXPECT_FALSE(store.TryGetBlob(missing).ok());
  }
  // The error names the offending key.
  EXPECT_NE(store.TryGetBlob({3, 7}).status().ToString().find("component=3"),
            std::string::npos);
}

TEST(BitmapStoreTest, TryMaterializeDetectsBitRot) {
  BitmapStore store;
  store.PutUncompressed({1, 0}, MakeBitmap(1000, 4));
  // Model post-stamp rot: re-insert a copy of the blob with one payload
  // byte flipped but the original checksum, as a torn page would leave it.
  BitmapStore::Blob rotten = store.GetBlob({1, 0});
  rotten.bytes[17] ^= 0x10;
  store.PutBlob({1, 1}, std::move(rotten));

  EXPECT_TRUE(store.TryMaterialize({1, 0}).ok());
  Result<Bitvector> r = store.TryMaterialize({1, 1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(BitmapStoreTest, TryMaterializeValidatesUnverifiedBlobs) {
  // Blobs without a checksum (v1 index files) still go through the
  // validating decoders: garbage can fail, but it cannot abort.
  BitmapStore store;
  BitmapStore::Blob garbage;
  garbage.codec = CodecId::kBbc;
  garbage.bit_count = 1000;
  garbage.bytes = {0x7F, 0x01, 0x02};  // malformed BBC atom stream
  store.PutBlob({1, 0}, std::move(garbage));
  BitmapStore::Blob short_verbatim;
  short_verbatim.codec = CodecId::kVerbatim;
  short_verbatim.bit_count = 1000;
  short_verbatim.bytes.assign(100, 0);  // needs 125 bytes
  store.PutBlob({1, 1}, std::move(short_verbatim));

  for (uint32_t slot : {0u, 1u}) {
    Result<Bitvector> r = store.TryMaterialize({1, slot});
    ASSERT_FALSE(r.ok()) << slot;
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption) << slot;
  }
}

TEST(BitmapStoreTest, ReplaceKeepsTotalBytesConsistent) {
  BitmapStore store;
  Bitvector sparse(50'000);
  sparse.Set(12);
  store.PutCompressed({1, 0}, sparse);
  store.PutUncompressed({1, 1}, MakeBitmap(1000, 5));

  // Replace the compressed bitmap with a much denser one (stored size
  // grows) and the uncompressed one with a same-size bitmap.
  store.Replace({1, 0}, MakeBitmap(50'000, 6, 0.5));
  store.Replace({1, 1}, MakeBitmap(1000, 7));
  EXPECT_EQ(store.TotalStoredBytes(),
            store.StoredBytes({1, 0}) + store.StoredBytes({1, 1}));

  // Shrink it back; the accounting must follow both directions.
  store.Replace({1, 0}, sparse);
  EXPECT_EQ(store.TotalStoredBytes(),
            store.StoredBytes({1, 0}) + store.StoredBytes({1, 1}));
  // Replaced blobs are re-stamped: materialization still verifies.
  EXPECT_EQ(store.TryMaterialize({1, 0}).value(), sparse);
}

TEST(BitmapStoreTest, PutWithCodecTagsAndRoundTripsEveryCodec) {
  BitmapStore store;
  Bitvector bv = MakeBitmap(20'000, 8, 0.02);
  for (int c = 0; c < kNumCodecs; ++c) {
    const CodecId codec = static_cast<CodecId>(c);
    const BitmapKey key{1, static_cast<uint32_t>(c)};
    store.PutWithCodec(key, bv, codec);
    const BitmapStore::Blob& blob = store.GetBlob(key);
    EXPECT_EQ(blob.codec, codec);
    EXPECT_FALSE(blob.auto_codec);
    EXPECT_TRUE(blob.crc_valid);
    EXPECT_EQ(store.TryMaterialize(key).value(), bv) << CodecName(codec);
    // The resident form only stays compressed for Roaring.
    Result<DecodedBitmap> resident = TryMaterializeBlobResident(blob);
    ASSERT_TRUE(resident.ok());
    EXPECT_EQ(resident.value().is_roaring(), codec == CodecId::kRoaring);
    EXPECT_EQ(*resident.value().MaterializePlain(), bv);
  }
  EXPECT_EQ(store.BitmapCount(), static_cast<uint64_t>(kNumCodecs));
}

TEST(BitmapStoreTest, PutAutoFollowsAdvisorAndReplaceReAdvises) {
  BitmapStore store;
  // Sparse: the advisor picks Roaring.
  Bitvector sparse(100'000);
  sparse.Set(3);
  sparse.Set(50'000);
  EXPECT_EQ(store.PutAuto({1, 0}, sparse), CodecId::kRoaring);
  EXPECT_EQ(store.GetBlob({1, 0}).codec, CodecId::kRoaring);
  EXPECT_TRUE(store.GetBlob({1, 0}).auto_codec);

  // Replace with incompressible noise: the advisor re-picks verbatim.
  Bitvector noise = MakeBitmap(100'000, 9, 0.5);
  store.Replace({1, 0}, noise);
  EXPECT_EQ(store.GetBlob({1, 0}).codec, CodecId::kVerbatim);
  EXPECT_TRUE(store.GetBlob({1, 0}).auto_codec);
  EXPECT_EQ(store.TryMaterialize({1, 0}).value(), noise);

  // An explicitly-coded blob keeps its codec across the same replacement.
  store.PutWithCodec({1, 1}, sparse, CodecId::kBbc);
  store.Replace({1, 1}, noise);
  EXPECT_EQ(store.GetBlob({1, 1}).codec, CodecId::kBbc);
  EXPECT_FALSE(store.GetBlob({1, 1}).auto_codec);
  EXPECT_EQ(store.TryMaterialize({1, 1}).value(), noise);

  // Accounting stays consistent through the codec flips.
  EXPECT_EQ(store.TotalStoredBytes(),
            store.StoredBytes({1, 0}) + store.StoredBytes({1, 1}));
}

TEST(FaultInjectorTest, SameSeedReplaysSameFaultSequence) {
  FaultInjectorOptions opts;
  opts.seed = 42;
  opts.unavailable_prob = 0.2;
  opts.bit_flip_prob = 0.1;
  opts.latency_spike_prob = 0.1;
  FaultInjector a(opts), b(opts);
  for (uint32_t slot = 0; slot < 8; ++slot) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      EXPECT_EQ(a.OnRead({1, slot}), b.OnRead({1, slot})) << slot;
    }
  }
  // And the mix is non-trivial: some faults of each class fired.
  FaultInjector::Counters c = a.counters();
  EXPECT_EQ(c.reads, 400u);
  EXPECT_GT(c.unavailable, 0u);
  EXPECT_GT(c.bit_flips, 0u);
  EXPECT_GT(c.latency_spikes, 0u);
  EXPECT_LT(c.unavailable + c.bit_flips + c.latency_spikes, c.reads);
}

TEST(FaultInjectorTest, PerKeySequenceIsInterleavingIndependent) {
  // Interleaving reads of other keys must not perturb a key's own fault
  // sequence -- the property that makes chaos runs replayable.
  FaultInjectorOptions opts;
  opts.seed = 7;
  opts.unavailable_prob = 0.3;
  FaultInjector alone(opts), interleaved(opts);
  std::vector<FaultInjector::Fault> seq_alone, seq_mixed;
  for (int i = 0; i < 40; ++i) seq_alone.push_back(alone.OnRead({1, 0}));
  for (int i = 0; i < 40; ++i) {
    interleaved.OnRead({2, static_cast<uint32_t>(i)});
    seq_mixed.push_back(interleaved.OnRead({1, 0}));
    interleaved.OnRead({3, 5});
  }
  EXPECT_EQ(seq_alone, seq_mixed);
}

TEST(FaultInjectorTest, FirstAttemptsFailDeterministically) {
  FaultInjectorOptions opts;
  opts.unavailable_first_attempts = 2;
  FaultInjector inj(opts);
  EXPECT_EQ(inj.OnRead({1, 0}), FaultInjector::Fault::kUnavailable);
  EXPECT_EQ(inj.OnRead({1, 0}), FaultInjector::Fault::kUnavailable);
  EXPECT_EQ(inj.OnRead({1, 0}), FaultInjector::Fault::kNone);
  // Every key gets its own attempt counter.
  EXPECT_EQ(inj.OnRead({1, 1}), FaultInjector::Fault::kUnavailable);
}

TEST(FaultInjectorTest, CorruptPayloadFlipsExactlyOneBitDeterministically) {
  FaultInjectorOptions opts;
  opts.seed = 9;
  FaultInjector inj(opts);
  std::vector<uint8_t> original(64, 0xA5);
  std::vector<uint8_t> first = original;
  inj.CorruptPayload({1, 3}, &first);
  int changed_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(first[i] ^ original[i]);
    while (diff != 0) {
      changed_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(changed_bits, 1);
  // Deterministic: the same key flips the same bit again.
  std::vector<uint8_t> second = original;
  inj.CorruptPayload({1, 3}, &second);
  EXPECT_EQ(first, second);
  // Empty payloads are a no-op, not an abort.
  std::vector<uint8_t> empty;
  inj.CorruptPayload({1, 3}, &empty);
  EXPECT_TRUE(empty.empty());
}

TEST(DiskModelTest, ReadSecondsIsSeekPlusTransfer) {
  DiskModel disk;
  disk.seek_seconds = 0.01;
  disk.bytes_per_second = 1000.0;
  EXPECT_DOUBLE_EQ(disk.ReadSeconds(0), 0.01);
  EXPECT_DOUBLE_EQ(disk.ReadSeconds(500), 0.01 + 0.5);
}

class BitmapCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Four 125-byte bitmaps.
    for (uint32_t s = 0; s < 4; ++s) {
      store_.PutUncompressed({1, s}, MakeBitmap(1000, s));
    }
  }
  BitmapStore store_;
};

TEST_F(BitmapCacheTest, FetchReturnsStoredBitmap) {
  BitmapCache cache(&store_, 1 << 20);
  EXPECT_EQ(cache.Fetch({1, 2}), MakeBitmap(1000, 2));
}

TEST_F(BitmapCacheTest, SecondFetchHitsPool) {
  BitmapCache cache(&store_, 1 << 20);
  cache.Fetch({1, 0});
  cache.Fetch({1, 0});
  EXPECT_EQ(cache.stats().scans, 2u);
  EXPECT_EQ(cache.stats().disk_reads, 1u);
  EXPECT_EQ(cache.stats().pool_hits, 1u);
  EXPECT_EQ(cache.stats().rescans, 0u);
  EXPECT_EQ(cache.stats().bytes_read, 125u);
}

TEST_F(BitmapCacheTest, TinyPoolCausesRescans) {
  BitmapCache cache(&store_, 130);  // fits exactly one bitmap
  cache.Fetch({1, 0});
  cache.Fetch({1, 1});  // evicts 0
  cache.Fetch({1, 0});  // rescan
  EXPECT_EQ(cache.stats().disk_reads, 3u);
  EXPECT_EQ(cache.stats().rescans, 1u);
  EXPECT_EQ(cache.stats().pool_hits, 0u);
}

TEST_F(BitmapCacheTest, LruEvictsLeastRecentlyUsed) {
  BitmapCache cache(&store_, 250);  // two bitmaps fit
  cache.Fetch({1, 0});
  cache.Fetch({1, 1});
  cache.Fetch({1, 0});  // touch 0: LRU order is now (0, 1)
  cache.Fetch({1, 2});  // evicts 1
  cache.Fetch({1, 0});  // still resident
  EXPECT_EQ(cache.stats().pool_hits, 2u);
  cache.Fetch({1, 1});  // was evicted -> rescan
  EXPECT_EQ(cache.stats().rescans, 1u);
}

TEST_F(BitmapCacheTest, OversizedBitmapReadsThrough) {
  BitmapCache cache(&store_, 64);  // smaller than any bitmap
  cache.Fetch({1, 0});
  cache.Fetch({1, 0});
  EXPECT_EQ(cache.stats().disk_reads, 2u);
  EXPECT_EQ(cache.stats().pool_hits, 0u);
  EXPECT_EQ(cache.pool_bytes_used(), 0u);
}

TEST_F(BitmapCacheTest, DropPoolForgetsResidencyAndHistory) {
  BitmapCache cache(&store_, 1 << 20);
  cache.Fetch({1, 0});
  cache.DropPool();
  cache.Fetch({1, 0});
  EXPECT_EQ(cache.stats().disk_reads, 2u);
  // History was dropped too: the re-read does not count as a rescan.
  EXPECT_EQ(cache.stats().rescans, 0u);
}

TEST_F(BitmapCacheTest, IoSecondsFollowDiskModel) {
  DiskModel disk;
  disk.seek_seconds = 0.01;
  disk.bytes_per_second = 1000.0;
  BitmapCache cache(&store_, 1 << 20, disk);
  cache.Fetch({1, 0});
  EXPECT_DOUBLE_EQ(cache.stats().io_seconds, 0.01 + 125.0 / 1000.0);
  cache.Fetch({1, 0});  // pool hit: no extra I/O
  EXPECT_DOUBLE_EQ(cache.stats().io_seconds, 0.01 + 125.0 / 1000.0);
}

TEST_F(BitmapCacheTest, StatsAccountingInvariant) {
  BitmapCache cache(&store_, 250);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    cache.Fetch({1, static_cast<uint32_t>(rng.UniformInt(0, 3))});
  }
  const IoStats& s = cache.stats();
  EXPECT_EQ(s.scans, 200u);
  EXPECT_EQ(s.scans, s.pool_hits + s.disk_reads);
  EXPECT_LE(s.rescans, s.disk_reads);
  EXPECT_EQ(s.bytes_read, s.disk_reads * 125u);
}

TEST_F(BitmapCacheTest, InjectedUnavailableSurfacesAndRecovers) {
  FaultInjectorOptions opts;
  opts.unavailable_first_attempts = 1;
  FaultInjector inj(opts);
  BitmapCache cache(&store_, 1 << 20);
  cache.SetFaultInjector(&inj);
  IoStats stats;
  Result<Bitvector> first = cache.TryFetch({1, 0}, &stats);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), Status::Code::kUnavailable);
  EXPECT_TRUE(first.status().IsRetryable());
  // The retry (attempt 2) succeeds and returns the true bitmap.
  Result<Bitvector> second = cache.TryFetch({1, 0}, &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), MakeBitmap(1000, 0));
  // A later fetch is a pool hit: hits bypass the injector entirely.
  EXPECT_TRUE(cache.TryFetch({1, 0}, &stats).ok());
  EXPECT_EQ(inj.counters().reads, 2u);
}

TEST_F(BitmapCacheTest, InjectedBitFlipIsCorruptionAndNeverCached) {
  FaultInjectorOptions opts;
  opts.bit_flip_prob = 1.0;
  FaultInjector inj(opts);
  BitmapCache cache(&store_, 1 << 20);
  cache.SetFaultInjector(&inj);
  IoStats stats;
  for (int i = 0; i < 3; ++i) {
    Result<Bitvector> r = cache.TryFetch({1, 0}, &stats);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
  // The corrupted payload never entered the pool, and the store itself is
  // untouched (the flip hits a copy of the read).
  EXPECT_EQ(cache.pool_bytes_used(), 0u);
  EXPECT_TRUE(store_.TryMaterialize({1, 0}).ok());
}

TEST_F(BitmapCacheTest, LatencySpikesDoNotAffectResults) {
  FaultInjectorOptions opts;
  opts.latency_spike_prob = 1.0;
  opts.latency_spike_seconds = 0.0;  // keep the test instant
  FaultInjector inj(opts);
  BitmapCache cache(&store_, 1 << 20);
  cache.SetFaultInjector(&inj);
  IoStats stats;
  Result<Bitvector> r = cache.TryFetch({1, 1}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), MakeBitmap(1000, 1));
  EXPECT_EQ(inj.counters().latency_spikes, 1u);
}

TEST(BitmapCacheTest2, CompressedFetchChargesDecodeEveryTime) {
  BitmapStore store;
  Bitvector sparse(80'000);
  sparse.Set(3);
  store.PutCompressed({1, 0}, sparse);
  const uint64_t cmp_bytes = store.StoredBytes({1, 0});
  DiskModel disk;
  disk.decompress_bytes_per_second = 1000.0;
  BitmapCache cache(&store, 1 << 20, disk);
  cache.Fetch({1, 0});
  cache.Fetch({1, 0});  // pool hit, but decode is paid again
  EXPECT_DOUBLE_EQ(cache.stats().decode_seconds,
                   2.0 * static_cast<double>(cmp_bytes) / 1000.0);
  EXPECT_EQ(cache.stats().disk_reads, 1u);
}

TEST(BitmapCacheTest2, UncompressedFetchChargesNoDecode) {
  BitmapStore store;
  store.PutUncompressed({1, 0}, MakeBitmap(1000, 1));
  BitmapCache cache(&store, 1 << 20);
  cache.Fetch({1, 0});
  EXPECT_DOUBLE_EQ(cache.stats().decode_seconds, 0.0);
}

TEST(BitmapCacheTest2, RoaringFetchChargesScaledDecodeAndTagsCodec) {
  BitmapStore store;
  Bitvector sparse(80'000);
  sparse.Set(3);
  sparse.Set(70'001);
  store.PutWithCodec({1, 0}, sparse, CodecId::kRoaring);
  store.PutCompressed({1, 1}, sparse);
  store.PutUncompressed({1, 2}, MakeBitmap(1000, 1));
  const uint64_t roaring_bytes = store.StoredBytes({1, 0});
  DiskModel disk;
  disk.decompress_bytes_per_second = 1000.0;
  BitmapCache cache(&store, 1 << 20, disk);
  IoStats stats;
  ASSERT_TRUE(cache.TryFetch({1, 0}, &stats).ok());
  // Roaring hands out container form, so its modeled decode cost is a
  // fraction (roaring_decode_scale) of a full decompression pass.
  EXPECT_DOUBLE_EQ(stats.decode_seconds,
                   disk.roaring_decode_scale *
                       static_cast<double>(roaring_bytes) / 1000.0);
  ASSERT_TRUE(cache.TryFetch({1, 1}, &stats).ok());
  ASSERT_TRUE(cache.TryFetch({1, 2}, &stats).ok());
  // Every fetch is tallied under its blob's codec.
  EXPECT_EQ(stats.codec_decodes[static_cast<size_t>(CodecId::kRoaring)], 1u);
  EXPECT_EQ(stats.codec_decodes[static_cast<size_t>(CodecId::kBbc)], 1u);
  EXPECT_EQ(stats.codec_decodes[static_cast<size_t>(CodecId::kVerbatim)], 1u);
  EXPECT_EQ(stats.codec_decodes[static_cast<size_t>(CodecId::kWah)], 0u);
}

// Field-by-field roll-up of two fully populated blocks: the merge used
// when per-worker stats are aggregated into service counters. Every
// IoStats field is set to a distinct value so a counter dropped from Add()
// fails here (and the static_assert in io_stats.h trips on added fields).
TEST(IoStatsTest, AddMergesEveryFieldOfPopulatedBlocks) {
  IoStats a;
  a.scans = 10;
  a.pool_hits = 4;
  a.disk_reads = 6;
  a.rescans = 2;
  a.bytes_read = 1000;
  a.io_seconds = 1.5;
  a.decode_seconds = 0.5;
  a.cpu_seconds = 0.25;
  for (int c = 0; c < kNumCodecs; ++c) {
    a.codec_decodes[c] = 100 + static_cast<uint64_t>(c);
  }
  IoStats b;
  b.scans = 3;
  b.pool_hits = 1;
  b.disk_reads = 2;
  b.rescans = 1;
  b.bytes_read = 250;
  b.io_seconds = 0.75;
  b.decode_seconds = 0.125;
  b.cpu_seconds = 0.0625;
  for (int c = 0; c < kNumCodecs; ++c) {
    b.codec_decodes[c] = 10 * static_cast<uint64_t>(c) + 1;
  }
  a.Add(b);
  EXPECT_EQ(a.scans, 13u);
  EXPECT_EQ(a.pool_hits, 5u);
  EXPECT_EQ(a.disk_reads, 8u);
  EXPECT_EQ(a.rescans, 3u);
  EXPECT_EQ(a.bytes_read, 1250u);
  EXPECT_DOUBLE_EQ(a.io_seconds, 2.25);
  EXPECT_DOUBLE_EQ(a.decode_seconds, 0.625);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 0.3125);
  for (int c = 0; c < kNumCodecs; ++c) {
    EXPECT_EQ(a.codec_decodes[c],
              100 + static_cast<uint64_t>(c) + 10 * static_cast<uint64_t>(c) + 1)
        << CodecName(static_cast<CodecId>(c));
  }
  // b is untouched by the merge.
  EXPECT_EQ(b.scans, 3u);
  EXPECT_DOUBLE_EQ(b.io_seconds, 0.75);
}

// The BitmapCacheInterface contract: Fetch accounts into the caller's
// block, so two callers over one cache keep private breakdowns whose Add
// roll-up matches the cache's own cumulative view.
TEST_F(BitmapCacheTest, FetchAccountsIntoCallerBlock) {
  BitmapCache cache(&store_, 1 << 20);
  IoStats worker_a, worker_b;
  static_cast<BitmapCacheInterface&>(cache).Fetch({1, 0}, &worker_a);
  static_cast<BitmapCacheInterface&>(cache).Fetch({1, 0}, &worker_b);
  EXPECT_EQ(worker_a.scans, 1u);
  EXPECT_EQ(worker_a.disk_reads, 1u);
  EXPECT_EQ(worker_b.scans, 1u);
  EXPECT_EQ(worker_b.pool_hits, 1u);  // a's read left the bitmap resident
  IoStats total = worker_a;
  total.Add(worker_b);
  EXPECT_EQ(total.scans, 2u);
  EXPECT_EQ(total.disk_reads, 1u);
  EXPECT_EQ(total.pool_hits, 1u);
  EXPECT_EQ(total.bytes_read, 125u);
  // The internal cumulative block saw nothing (it belongs to the
  // convenience single-owner Fetch overload only).
  EXPECT_EQ(cache.stats().scans, 0u);
}

TEST(IoStatsTest, AddAccumulates) {
  IoStats a, b;
  a.scans = 1;
  a.io_seconds = 0.5;
  b.scans = 2;
  b.cpu_seconds = 0.25;
  a.Add(b);
  EXPECT_EQ(a.scans, 3u);
  EXPECT_DOUBLE_EQ(a.io_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 0.25);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 0.75);
}

// --- WAL framing + write-side fault injection (DESIGN.md section 15) ----

std::string WalPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

UpdateBatch SampleBatch(uint64_t seq) {
  UpdateBatch batch;
  batch.seq = seq;
  batch.first_rid = 100;
  batch.inserts = {3, 1, 4};
  batch.updates = {{42, 7, 9}, {17, 2, 5}};
  batch.deletes = {55, 12};
  return batch;
}

TEST(WalTest, AppendReadRoundtrip) {
  const std::string path = WalPath("roundtrip.wal");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(SampleBatch(1)).ok());
    ASSERT_TRUE(writer.value().Append(SampleBatch(2)).ok());
    EXPECT_EQ(writer.value().appends(), 2u);
    EXPECT_EQ(writer.value().size_bytes(), writer.value().bytes_appended());
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().batches.size(), 2u);
  EXPECT_EQ(read.value().truncated_tail_records, 0u);
  const UpdateBatch& got = read.value().batches[1];
  EXPECT_EQ(got.seq, 2u);
  EXPECT_EQ(got.first_rid, 100u);
  EXPECT_EQ(got.inserts, SampleBatch(2).inserts);
  ASSERT_EQ(got.updates.size(), 2u);
  EXPECT_EQ(got.updates[0].rid, 42u);
  EXPECT_EQ(got.updates[0].old_value, 7u);
  EXPECT_EQ(got.updates[0].value, 9u);
  EXPECT_EQ(got.deletes, SampleBatch(2).deletes);
}

TEST(WalTest, MissingFileReadsAsEmptyLog) {
  auto read = ReadWal(WalPath("nonexistent.wal"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().batches.empty());
  EXPECT_EQ(read.value().valid_bytes, 0u);
}

TEST(WalTest, SortByRidIsStableForDuplicateRids) {
  UpdateBatch batch;
  batch.updates = {{9, 0, 1}, {3, 0, 2}, {9, 0, 3}};
  batch.deletes = {8, 2, 5};
  batch.SortByRid();
  ASSERT_EQ(batch.updates.size(), 3u);
  EXPECT_EQ(batch.updates[0].rid, 3u);
  // Both rid-9 updates survive in submission order: last-wins semantics
  // depend on this stability.
  EXPECT_EQ(batch.updates[1].value, 1u);
  EXPECT_EQ(batch.updates[2].value, 3u);
  EXPECT_EQ(batch.deletes, (std::vector<uint64_t>{2, 5, 8}));
}

TEST(WalTest, TornTailIsTrimmedNotFatal) {
  const std::string path = WalPath("torn.wal");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(SampleBatch(1)).ok());
    ASSERT_TRUE(writer.value().Append(SampleBatch(2)).ok());
  }
  const uint64_t first_end = EncodeWalRecord(SampleBatch(1)).size();
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  // Keep the first record and 3 bytes of the second: a classic torn tail.
  ASSERT_EQ(::ftruncate(fileno(f), static_cast<off_t>(first_end + 3)), 0);
  std::fclose(f);

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().batches.size(), 1u);
  EXPECT_EQ(read.value().batches[0].seq, 1u);
  EXPECT_EQ(read.value().truncated_tail_records, 1u);
  EXPECT_EQ(read.value().valid_bytes, first_end);
}

TEST(WalTest, CorruptPayloadInCompleteRecordIsCorruption) {
  const std::string path = WalPath("corrupt.wal");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(SampleBatch(1)).ok());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);  // inside the payload
  std::fputc(0xFF, f);
  std::fclose(f);
  auto read = ReadWal(path);
  EXPECT_EQ(read.status().code(), Status::Code::kCorruption);
}

TEST(WalTest, InjectedShortWriteRepairsAndRetries) {
  FaultInjector injector({.short_write_first_attempts = 1});
  const std::string path = WalPath("short_write.wal");
  auto writer = WalWriter::Open(path, {.sync = false, .injector = &injector});
  ASSERT_TRUE(writer.ok());
  Status s = writer.value().Append(SampleBatch(1));
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_TRUE(s.IsRetryable());
  // The torn prefix was repaired away: the log is exactly as before.
  EXPECT_EQ(writer.value().size_bytes(), 0u);
  EXPECT_EQ(injector.counters().short_writes, 1u);

  ASSERT_TRUE(writer.value().Append(SampleBatch(1)).ok());
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().batches.size(), 1u);
  EXPECT_EQ(read.value().truncated_tail_records, 0u);
}

TEST(WalTest, InjectedTruncateFailureLeavesLogIntact) {
  FaultInjector injector({.rename_fail_first_attempts = 1});
  const std::string path = WalPath("truncate_fail.wal");
  auto writer = WalWriter::Open(path, {.sync = false, .injector = &injector});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append(SampleBatch(1)).ok());
  const uint64_t size = writer.value().size_bytes();
  EXPECT_EQ(writer.value().Truncate().code(), Status::Code::kUnavailable);
  EXPECT_EQ(writer.value().size_bytes(), size);
  ASSERT_TRUE(writer.value().Truncate().ok());
  EXPECT_EQ(writer.value().size_bytes(), 0u);
}

TEST(FaultInjectorWriteTest, DeterministicInSeedOpAndAttempt) {
  FaultInjectorOptions options;
  options.seed = 99;
  options.short_write_prob = 0.3;
  options.flush_fail_prob = 0.2;
  options.rename_fail_prob = 0.25;
  // Two injectors with the same seed replay the same fault schedule per
  // (op, attempt) regardless of interleaving with other ops.
  FaultInjector a(options);
  FaultInjector b(options);
  std::vector<FaultInjector::WriteFault> seq_a, seq_b;
  for (int i = 0; i < 64; ++i) {
    seq_a.push_back(a.OnWrite(FaultInjector::WriteOp::kWalAppend));
    a.OnWrite(FaultInjector::WriteOp::kRename);  // interleaved noise
  }
  for (int i = 0; i < 64; ++i) {
    b.OnWrite(FaultInjector::WriteOp::kWalFlush);  // different noise
    seq_b.push_back(b.OnWrite(FaultInjector::WriteOp::kWalAppend));
  }
  EXPECT_EQ(seq_a, seq_b);

  FaultInjectorOptions other = options;
  other.seed = 100;
  FaultInjector c(other);
  std::vector<FaultInjector::WriteFault> seq_c;
  for (int i = 0; i < 64; ++i) {
    seq_c.push_back(c.OnWrite(FaultInjector::WriteOp::kWalAppend));
  }
  EXPECT_NE(seq_a, seq_c);  // the schedule is seed-dependent
}

TEST(FaultInjectorWriteTest, FaultsOnlyApplyToTheirOps) {
  // A short-write draw can only hit WAL appends, flush failures only the
  // flush op, rename failures only rename/truncate — an inapplicable draw
  // is kNone, never a different fault.
  FaultInjectorOptions options;
  options.seed = 7;
  options.short_write_prob = 1.0;
  FaultInjector injector(options);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalAppend),
            FaultInjector::WriteFault::kShortWrite);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalFlush),
            FaultInjector::WriteFault::kNone);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kRename),
            FaultInjector::WriteFault::kNone);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalTruncate),
            FaultInjector::WriteFault::kNone);
  EXPECT_EQ(injector.counters().writes, 4u);
  EXPECT_EQ(injector.counters().short_writes, 1u);
}

TEST(FaultInjectorWriteTest, FirstAttemptsFailDeterministically) {
  FaultInjectorOptions options;
  options.flush_fail_first_attempts = 2;
  FaultInjector injector(options);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalFlush),
            FaultInjector::WriteFault::kFailFlush);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalFlush),
            FaultInjector::WriteFault::kFailFlush);
  EXPECT_EQ(injector.OnWrite(FaultInjector::WriteOp::kWalFlush),
            FaultInjector::WriteFault::kNone);
  EXPECT_EQ(injector.counters().flush_failures, 2u);
}

TEST(FaultInjectorWriteTest, ShortWriteLengthIsDeterministicAndInRange) {
  FaultInjectorOptions options;
  options.seed = 31;
  FaultInjector a(options);
  FaultInjector b(options);
  for (uint64_t attempt = 0; attempt < 32; ++attempt) {
    const uint64_t len = a.ShortWriteLength(52, attempt);
    EXPECT_EQ(len, b.ShortWriteLength(52, attempt));
    EXPECT_LT(len, 52u);
  }
  EXPECT_EQ(a.ShortWriteLength(0, 3), 0u);
}

}  // namespace
}  // namespace bix
