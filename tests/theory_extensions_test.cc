// Tests for the theory extensions: time-optimal base selection (the other
// axis of the paper's [CI98b] design-space framework) and the Wu & Buchmann
// encoded-bitmap model the paper discusses in Section 2.

#include <gtest/gtest.h>

#include "query/membership_rewrite.h"
#include "theory/base_optimizer.h"
#include "theory/encoded_bitmap.h"

namespace bix {
namespace {

// --- Time-optimal bases -----------------------------------------------------

TEST(BaseOptimizerTest, SingleComponentIsTrivial) {
  Decomposition d =
      ChooseTimeOptimalBases(50, 1, EncodingKind::kInterval, {}).value();
  EXPECT_EQ(d.num_components(), 1u);
  EXPECT_EQ(d.base(1), 50u);
}

TEST(BaseOptimizerTest, NeverSlowerThanSpaceOptimal) {
  const QueryClassMix mix{1.0, 1.0, 1.0};
  for (EncodingKind enc : BasicEncodingKinds()) {
    for (uint32_t n : {2u, 3u}) {
      Decomposition time_opt =
          ChooseTimeOptimalBases(50, n, enc, mix).value();
      Decomposition space_opt =
          ChooseSpaceOptimalBases(50, n, enc).value();
      EXPECT_LE(MixedExpectedScans(time_opt, enc, mix),
                MixedExpectedScans(space_opt, enc, mix) + 1e-12)
          << EncodingKindName(enc) << " n=" << n;
    }
  }
}

TEST(BaseOptimizerTest, RespectsBitmapCap) {
  const QueryClassMix mix{1.0, 1.0, 1.0};
  Result<Decomposition> d =
      ChooseTimeOptimalBases(50, 2, EncodingKind::kEquality, mix,
                             /*max_bitmaps=*/15);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(TotalBitmaps(d.value(), EncodingKind::kEquality), 15u);
  // An impossible cap fails cleanly.
  EXPECT_FALSE(ChooseTimeOptimalBases(50, 2, EncodingKind::kEquality, mix, 5)
                   .ok());
}

TEST(BaseOptimizerTest, DigitOrderMatters) {
  // <2,25> and <25,2> store the same bitmaps for range encoding but have
  // different expected scans; the optimizer must consider both orders.
  Decomposition a = Decomposition::Make(50, {2, 25}).value();
  Decomposition b = Decomposition::Make(50, {25, 2}).value();
  const QueryClassMix mix{0.0, 1.0, 1.0};
  const double sa = MixedExpectedScans(a, EncodingKind::kRange, mix);
  const double sb = MixedExpectedScans(b, EncodingKind::kRange, mix);
  EXPECT_NE(sa, sb);
  Decomposition best =
      ChooseTimeOptimalBases(50, 2, EncodingKind::kRange, mix).value();
  EXPECT_LE(MixedExpectedScans(best, EncodingKind::kRange, mix),
            std::min(sa, sb) + 1e-12);
}

TEST(BaseOptimizerTest, EqualityHeavyMixPrefersFewComponentsForE) {
  // Equality encoding answers an equality query with one scan per
  // component; the time-optimal pick under a pure-EQ mix uses the fewest
  // scans available at that n.
  const QueryClassMix mix{1.0, 0.0, 0.0};
  Decomposition d =
      ChooseTimeOptimalBases(50, 2, EncodingKind::kEquality, mix).value();
  // One scan per component, minus boundary queries the rewriter answers
  // with fewer (e.g. the top value of a domain with decomposition slack).
  EXPECT_LE(MixedExpectedScans(d, EncodingKind::kEquality, mix), 2.0 + 1e-9);
  EXPECT_GT(MixedExpectedScans(d, EncodingKind::kEquality, mix), 1.5);
}

TEST(BaseOptimizerTest, InvalidInputsRejected) {
  EXPECT_FALSE(ChooseTimeOptimalBases(1, 1, EncodingKind::kRange, {}).ok());
  EXPECT_FALSE(ChooseTimeOptimalBases(50, 7, EncodingKind::kRange, {}).ok());
}

// --- Encoded bitmap (Wu & Buchmann) model -----------------------------------

TEST(EncodedBitmapTest, IdentityModelScans) {
  EncodedBitmapModel m = IdentityEncodedModel(8);
  EXPECT_EQ(m.bits, 3u);
  // "A = 3": all 3 bits needed to isolate code 011 among 8 codes.
  EXPECT_EQ(EncodedScans(m, {3}), 3u);
  // "A in {0..3}": determined by the top bit alone.
  EXPECT_EQ(EncodedScans(m, {0, 1, 2, 3}), 1u);
  // "A in {0,2,4,6}": even codes, bit 0 alone.
  EXPECT_EQ(EncodedScans(m, {0, 2, 4, 6}), 1u);
  // Whole domain or empty: constant.
  EXPECT_EQ(EncodedScans(m, {0, 1, 2, 3, 4, 5, 6, 7}), 0u);
  EXPECT_EQ(EncodedScans(m, {}), 0u);
}

TEST(EncodedBitmapTest, NonPowerOfTwoDomain) {
  EncodedBitmapModel m = IdentityEncodedModel(6);
  EXPECT_EQ(m.bits, 3u);
  // "A in {4,5}": top bit = 1 identifies codes 100/101; codes 110/111 are
  // unused, so one bit suffices.
  EXPECT_EQ(EncodedScans(m, {4, 5}), 1u);
}

TEST(EncodedBitmapTest, ExhaustiveOptimizerBeatsIdentityOnSkewedSet) {
  // Query set repeatedly asking for {1, 4}: the optimizer can give these
  // values codes differing from the rest in one bit.
  std::vector<MembershipQuery> queries(4, MembershipQuery{{1, 4}});
  EncodedBitmapModel identity = IdentityEncodedModel(6);
  EncodedBitmapModel best = OptimizeEncodedExhaustive(6, queries);
  EXPECT_LE(EncodedTotalScans(best, queries),
            EncodedTotalScans(identity, queries));
  EXPECT_EQ(EncodedScans(best, {1, 4}), 1u);
}

TEST(EncodedBitmapTest, LocalSearchNeverWorseThanIdentity) {
  Rng rng(9);
  std::vector<MembershipQuery> queries = {
      {{0, 3}}, {{5, 9, 10}}, {{2}}, {{7, 8}}, {{1, 2, 3, 4}}};
  EncodedBitmapModel identity = IdentityEncodedModel(12);
  EncodedBitmapModel tuned =
      OptimizeEncodedLocalSearch(12, queries, 2000, &rng);
  EXPECT_LE(EncodedTotalScans(tuned, queries),
            EncodedTotalScans(identity, queries));
  // Codes stay distinct.
  std::vector<uint32_t> codes = tuned.code_of_value;
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::adjacent_find(codes.begin(), codes.end()), codes.end());
}

TEST(EncodedBitmapTest, ComparisonWithPaperSchemes) {
  // The binary/encoded design stores only ceil(log2 C) bitmaps but needs
  // up to that many scans per equality query, whereas equality encoding
  // needs one and interval encoding two — the tradeoff the paper's
  // Section 2 discussion hinges on.
  const uint32_t c = 16;
  EncodedBitmapModel m = IdentityEncodedModel(c);
  uint64_t total = 0;
  for (uint32_t v = 0; v < c; ++v) total += EncodedScans(m, {v});
  EXPECT_EQ(total, static_cast<uint64_t>(c) * m.bits);  // 4 scans each
}

}  // namespace
}  // namespace bix
