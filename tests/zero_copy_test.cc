// Tests for the zero-copy evaluation pipeline: fused k-ary kernel
// equivalence against the naive per-operand composition (including ragged
// tail words, empty and all-ones operands, and destination aliasing), the
// copy-count tripwires that keep by-value bitmap handoffs from silently
// returning, and bit-identical results across the query-wise,
// component-wise, buffer-aware, and count-only evaluation paths.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "expr/evaluate.h"
#include "query/executor.h"
#include "server/query_service.h"
#include "server/sharded_cache.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

Bitvector MakeRandom(uint64_t bits, double density, Rng* rng) {
  Bitvector bv(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if (rng->Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

// ---------------------------------------------------- fused kernel fuzz --

TEST(FusedKernelTest, ManyIntoMatchesNaiveComposition) {
  Rng rng(1234);
  // Sizes cover empty, sub-word, exact-word, and ragged-tail shapes.
  const std::vector<uint64_t> sizes = {0, 1, 5, 63, 64, 65, 127, 128, 1000};
  for (int round = 0; round < 200; ++round) {
    const uint64_t bits = round < 9 * 8
                              ? sizes[round % sizes.size()]
                              : rng.UniformInt(0, 2000);
    const size_t k = rng.UniformInt(2, 6);
    std::vector<Bitvector> operands;
    for (size_t i = 0; i < k; ++i) {
      // Mix random densities with degenerate all-zero / all-one operands.
      const uint64_t shape = rng.UniformInt(0, 4);
      if (shape == 0) {
        operands.push_back(Bitvector(bits));
      } else if (shape == 1) {
        operands.push_back(Bitvector::AllOnes(bits));
      } else {
        operands.push_back(MakeRandom(bits, rng.UniformDouble(), &rng));
      }
    }
    std::vector<const Bitvector*> ptrs;
    for (const Bitvector& op : operands) ptrs.push_back(&op);

    Bitvector naive_and = operands[0];
    Bitvector naive_or = operands[0];
    Bitvector naive_xor = operands[0];
    for (size_t i = 1; i < k; ++i) {
      naive_and.AndWith(operands[i]);
      naive_or.OrWith(operands[i]);
      naive_xor.XorWith(operands[i]);
    }

    Bitvector fused;
    Bitvector::AndManyInto(ptrs, &fused);
    ASSERT_EQ(fused, naive_and) << "AND bits=" << bits << " k=" << k;
    Bitvector::OrManyInto(ptrs, &fused);
    ASSERT_EQ(fused, naive_or) << "OR bits=" << bits << " k=" << k;
    Bitvector::XorManyInto(ptrs, &fused);
    ASSERT_EQ(fused, naive_xor) << "XOR bits=" << bits << " k=" << k;

    // Aliasing: the destination doubles as an operand (the evaluator reuses
    // a child's scratch buffer this way).
    Bitvector aliased = operands[0];
    std::vector<const Bitvector*> aliased_ptrs = ptrs;
    aliased_ptrs[0] = &aliased;
    Bitvector::AndManyInto(aliased_ptrs, &aliased);
    ASSERT_EQ(aliased, naive_and) << "aliased AND bits=" << bits;
  }
}

TEST(FusedKernelTest, AndNotWithMatchesNotThenAnd) {
  Rng rng(99);
  for (uint64_t bits : {1u, 64u, 65u, 777u}) {
    for (int round = 0; round < 20; ++round) {
      Bitvector a = MakeRandom(bits, 0.4, &rng);
      const Bitvector b = MakeRandom(bits, 0.4, &rng);
      Bitvector expected = a;
      expected.AndWith(Bitvector::Not(b));
      a.AndNotWith(b);
      ASSERT_EQ(a, expected) << bits;
      // Trailing padding must stay clear (Not(b) has one-padding internally
      // cleared; AndNotWith must not resurrect it).
      Bitvector all = Bitvector::AllOnes(bits);
      all.AndNotWith(Bitvector(bits));
      ASSERT_EQ(all.Count(), bits);
    }
  }
}

TEST(FusedKernelTest, AndWithCountMatchesAndThenCount) {
  Rng rng(7);
  for (uint64_t bits : {0u, 1u, 63u, 64u, 129u, 1000u}) {
    for (int round = 0; round < 20; ++round) {
      Bitvector a = MakeRandom(bits, rng.UniformDouble(), &rng);
      const Bitvector b = MakeRandom(bits, rng.UniformDouble(), &rng);
      Bitvector expected = a;
      expected.AndWith(b);
      const uint64_t count = a.AndWithCount(b);
      ASSERT_EQ(a, expected);
      ASSERT_EQ(count, expected.Count());
    }
  }
}

TEST(FusedKernelTest, NotIntoMatchesCopyThenNotSelf) {
  Rng rng(31);
  for (uint64_t bits : {0u, 1u, 63u, 64u, 65u, 501u}) {
    Bitvector src = MakeRandom(bits, 0.5, &rng);
    Bitvector expected = src;
    expected.NotSelf();
    Bitvector out;
    Bitvector::NotInto(src, &out);
    ASSERT_EQ(out, expected) << bits;
    // Aliasing degrades to NotSelf.
    Bitvector aliased = src;
    Bitvector::NotInto(aliased, &aliased);
    ASSERT_EQ(aliased, expected) << bits;
    // Trailing padding beyond size() stays clear.
    ASSERT_EQ(out.Count() + src.Count(), bits) << bits;
  }
}

TEST(FusedKernelTest, AndCountMatchesMaterializedConjunction) {
  Rng rng(32);
  for (uint64_t bits : {0u, 1u, 64u, 129u, 2000u}) {
    for (int round = 0; round < 10; ++round) {
      const Bitvector a = MakeRandom(bits, rng.UniformDouble(), &rng);
      const Bitvector b = MakeRandom(bits, rng.UniformDouble(), &rng);
      ASSERT_EQ(Bitvector::AndCount(a, b), Bitvector::And(a, b).Count());
    }
  }
}

TEST(FusedKernelTest, AllZero) {
  EXPECT_TRUE(Bitvector().AllZero());
  EXPECT_TRUE(Bitvector(1000).AllZero());
  Bitvector bv(1000);
  bv.Set(999);
  EXPECT_FALSE(bv.AllZero());
  bv.Clear(999);
  EXPECT_TRUE(bv.AllZero());
}

// ------------------------------------------------------- copy tripwires --

// The evaluator memoizes leaf *handles*: a leaf referenced repeatedly in
// one expression is fetched once and never copied to be handed out again.
// This pins the FetchMemoized by-value regression (evaluate.cc used to
// return its memo entry by value on every reference).
TEST(CopyTripwireTest, RepeatedLeafIsFetchedOnceAndNeverCopied) {
  const uint64_t kRows = 10000;
  Rng rng(5);
  auto b0 = std::make_shared<const Bitvector>(MakeRandom(kRows, 0.3, &rng));
  auto b1 = std::make_shared<const Bitvector>(MakeRandom(kRows, 0.3, &rng));
  auto b2 = std::make_shared<const Bitvector>(MakeRandom(kRows, 0.3, &rng));
  int fetches = 0;
  SharedLeafFetcher fetch =
      [&](BitmapKey key) -> std::shared_ptr<const Bitvector> {
    ++fetches;
    switch (key.slot) {
      case 0: return b0;
      case 1: return b1;
      default: return b2;
    }
  };
  // (B0 & B1) | (B0 & B2): B0 appears twice.
  ExprPtr e = ExprOr(ExprAnd(ExprLeaf(1, 0), ExprLeaf(1, 1)),
                     ExprAnd(ExprLeaf(1, 0), ExprLeaf(1, 2)));
  BitvectorCopyStats::Reset();
  EvalResult r = EvaluateExprShared(e, kRows, fetch);
  EXPECT_EQ(fetches, 3);  // B0 memoized as a handle
  // All-leaf n-ary nodes and the OR combine run over borrowed handles and
  // scratch buffers: zero payload copies end to end.
  EXPECT_EQ(BitvectorCopyStats::copies(), 0u);
  // Sanity: the result is right.
  Bitvector expected = Bitvector::And(*b0, *b1);
  expected.OrWith(Bitvector::And(*b0, *b2));
  EXPECT_EQ(r.view(), expected);
}

// The cached component-wise serving path: leaves come out of the shared
// cache as handles and are combined in place — no bitmap payload is copied
// anywhere between the cache and the final result. This is the tripwire
// for the two by-value regressions (executor.cc's per-leaf-reference copy
// of the fetched map entry, and the cache hit path's defensive copy).
TEST(CopyTripwireTest, CachedComponentWiseMembershipCopiesNothing) {
  Column col = GenerateZipfColumn(
      {.rows = 20000, .cardinality = 40, .zipf_z = 1.0, .seed = 11});
  BitmapIndex index =
      BitmapIndex::Build(col, Decomposition::SingleComponent(40),
                         EncodingKind::kEquality, false);
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 4);
  ExecutorOptions opts;
  opts.strategy = EvalStrategy::kComponentWise;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {3, 7, 8, 9, 25};
  std::vector<ExprPtr> exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm the cache

  BitvectorCopyStats::Reset();
  Bitvector warm = exec.EvaluateRewritten(exprs);
  // Equality-encoded membership = OR of borrowed leaf handles into one
  // fresh accumulator: zero copies. Any by-value fetch, memo handout, or
  // per-leaf map copy re-appearing bumps this count by whole bitmaps.
  EXPECT_EQ(BitvectorCopyStats::copies(), 0u);
  EXPECT_EQ(warm, NaiveEvaluateMembership(col, values));

  // Count-only path over the same cached working set: also copy-free.
  BitvectorCopyStats::Reset();
  const uint64_t count = exec.EvaluateCountRewritten(exprs);
  EXPECT_EQ(BitvectorCopyStats::copies(), 0u);
  EXPECT_EQ(count, warm.Count());
}

// The operate-on-compressed tripwire: once the sharded cache is warm, an
// AND over Roaring-stored bitmaps runs entirely in the compressed domain —
// container-vs-container kernels plus WriteInto of the computed result —
// and performs ZERO full decodes of stored bitmaps (RoaringStats counts
// every whole-bitmap expansion: ToBitvector, MaterializePlain, and the
// codec Decode path).
TEST(CopyTripwireTest, WarmedRoaringAndPerformsZeroFullDecodes) {
  Column col = GenerateZipfColumn(
      {.rows = 30000, .cardinality = 36, .zipf_z = 1.2, .seed = 13});
  // Two components: each membership value rewrites to an AND of two leaves,
  // so the warmed path exercises the compressed-domain conjunction.
  BitmapIndex index =
      BitmapIndex::Build(col, Decomposition::Make(36, {6, 6}).value(),
                         EncodingKind::kEquality, StorageCodec::kRoaring);
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 4);
  ExecutorOptions opts;
  opts.strategy = EvalStrategy::kComponentWise;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {1, 9, 17, 30};
  std::vector<ExprPtr> exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm: every leaf now cache-resident

  RoaringStats::Reset();
  Bitvector warm = exec.EvaluateRewritten(exprs);
  EXPECT_EQ(RoaringStats::full_decodes(), 0u)
      << "a warmed Roaring AND expanded a whole stored bitmap";
  EXPECT_EQ(warm, NaiveEvaluateMembership(col, values));

  // Count-only over the same warm working set folds container
  // cardinalities (AndCount) — also decode-free.
  RoaringStats::Reset();
  const uint64_t count = exec.EvaluateCountRewritten(exprs);
  EXPECT_EQ(RoaringStats::full_decodes(), 0u);
  EXPECT_EQ(count, warm.Count());
}

// ------------------------------------- cross-path bit-identical results --

TEST(EvalPathEquivalenceTest, AllStrategiesAndCountAgreeOnSeededWorkload) {
  Column col = GenerateZipfColumn(
      {.rows = 5000, .cardinality = 25, .zipf_z = 1.0, .seed = 77});
  Rng rng(42);
  for (EncodingKind enc : AllEncodingKinds()) {
    for (bool compressed : {false, true}) {
      for (const auto& bases :
           std::vector<std::vector<uint32_t>>{{25}, {5, 5}}) {
        Decomposition d = Decomposition::Make(25, bases).value();
        BitmapIndex index = BitmapIndex::Build(col, d, enc, compressed);
        auto run = [&](EvalStrategy strategy,
                       const std::vector<uint32_t>& values,
                       uint64_t* count_out) {
          ExecutorOptions opts;
          opts.strategy = strategy;
          QueryExecutor exec(&index, opts);
          std::vector<ExprPtr> exprs = exec.RewriteMembership(values);
          *count_out = exec.EvaluateCountRewritten(exprs);
          return exec.EvaluateRewritten(exprs);
        };
        for (int q = 0; q < 10; ++q) {
          std::vector<uint32_t> values;
          const size_t n = rng.UniformInt(1, 6);
          for (size_t i = 0; i < n; ++i) {
            values.push_back(static_cast<uint32_t>(rng.UniformInt(0, 24)));
          }
          uint64_t c_query = 0, c_comp = 0, c_buf = 0;
          Bitvector query_wise = run(EvalStrategy::kQueryWise, values, &c_query);
          Bitvector comp_wise =
              run(EvalStrategy::kComponentWise, values, &c_comp);
          Bitvector buf_aware = run(EvalStrategy::kBufferAware, values, &c_buf);
          const Bitvector expected = NaiveEvaluateMembership(col, values);
          ASSERT_EQ(query_wise, expected) << EncodingKindName(enc);
          ASSERT_EQ(comp_wise, expected) << EncodingKindName(enc);
          ASSERT_EQ(buf_aware, expected) << EncodingKindName(enc);
          ASSERT_EQ(c_query, expected.Count()) << EncodingKindName(enc);
          ASSERT_EQ(c_comp, expected.Count()) << EncodingKindName(enc);
          ASSERT_EQ(c_buf, expected.Count()) << EncodingKindName(enc);
        }
      }
    }
  }
}

// ------------------------------------------------- service count-only --

TEST(CountOnlyServiceTest, CountMatchesMaterializedRows) {
  Column col = GenerateZipfColumn(
      {.rows = 8000, .cardinality = 30, .zipf_z = 1.0, .seed = 9});
  BitmapIndex index =
      BitmapIndex::Build(col, Decomposition::SingleComponent(30),
                         EncodingKind::kRange, false);
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(&index, options);
  const std::vector<uint32_t> values = {2, 11, 12, 13, 28};

  QueryResult full =
      service.Submit(ServiceQuery::Membership(values)).get();
  ASSERT_TRUE(full.status.ok());
  QueryResult count_only =
      service.Submit(ServiceQuery::Membership(values).CountOnly()).get();
  ASSERT_TRUE(count_only.status.ok());

  EXPECT_EQ(full.count, full.rows.Count());
  EXPECT_EQ(count_only.count, full.rows.Count());
  // Count-only never materializes rows for the client.
  EXPECT_EQ(count_only.rows.size(), 0u);
  EXPECT_EQ(full.rows, NaiveEvaluateMembership(col, values));
  service.Shutdown();
}

}  // namespace
}  // namespace bix
