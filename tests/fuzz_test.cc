// Failure-injection / fuzz tests: random and mutated byte streams fed to
// the validating decoders must never crash and must either fail cleanly or
// produce a stream-consistent bitmap; large-cardinality integration checks
// round out the sweep.

#include <gtest/gtest.h>

#include "compress/bbc.h"
#include "compress/wah.h"
#include "query/executor.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/query_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

TEST(BbcFuzzTest, RandomStreamsNeverCrashValidatingDecode) {
  Rng rng(101);
  int ok_count = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    BbcEncoded enc;
    enc.bit_count = rng.UniformInt(0, 4096);
    const uint64_t len = rng.UniformInt(0, 64);
    for (uint64_t i = 0; i < len; ++i) {
      enc.data.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
    }
    Result<Bitvector> r = BbcDecode(enc);
    if (r.ok()) {
      ++ok_count;
      // A stream the validator accepts must re-encode losslessly.
      EXPECT_EQ(BbcDecodeUnchecked(BbcEncode(r.value())), r.value());
    }
  }
  // Random streams virtually never cover exactly ceil(bit_count/8) bytes,
  // so (nearly) all must be rejected -- the property under test is that
  // rejection is always clean.
  EXPECT_LT(ok_count, 3000);
  // The empty stream for an empty bitmap is the trivially valid case.
  BbcEncoded empty;
  EXPECT_TRUE(BbcDecode(empty).ok());
}

TEST(BbcFuzzTest, MutatedValidStreamsNeverCrash) {
  Rng rng(102);
  Bitvector bv(5000);
  for (int i = 0; i < 200; ++i) bv.Set(rng.UniformInt(0, 4999));
  const BbcEncoded original = BbcEncode(bv);
  for (int trial = 0; trial < 2000; ++trial) {
    BbcEncoded mutated = original;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int m = 0; m < mutations; ++m) {
      if (mutated.data.empty()) break;
      const size_t pos = rng.UniformInt(0, mutated.data.size() - 1);
      mutated.data[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    Result<Bitvector> r = BbcDecode(mutated);  // must not crash
    if (r.ok()) {
      EXPECT_EQ(r.value().size(), mutated.bit_count);
    }
  }
}

TEST(BbcFuzzTest, TruncationsAlwaysRejectedOrConsistent) {
  Bitvector bv = Bitvector::AllOnes(10'000);
  bv.Clear(5);
  bv.Clear(9000);
  const BbcEncoded original = BbcEncode(bv);
  for (size_t keep = 0; keep < original.data.size(); ++keep) {
    BbcEncoded truncated;
    truncated.bit_count = original.bit_count;
    truncated.data.assign(original.data.begin(),
                          original.data.begin() + keep);
    EXPECT_FALSE(BbcDecode(truncated).ok()) << keep;
  }
}

TEST(BbcFuzzTest, OverrunStreamsRejected) {
  // Streams with trailing garbage past the point where the bitmap is
  // complete must be rejected, not silently accepted or over-read.
  Rng rng(104);
  Bitvector bv(1000);
  for (int i = 0; i < 50; ++i) bv.Set(rng.UniformInt(0, 999));
  const BbcEncoded original = BbcEncode(bv);
  for (int extra = 1; extra <= 16; ++extra) {
    BbcEncoded overrun = original;
    for (int i = 0; i < extra; ++i) {
      overrun.data.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
    }
    Result<Bitvector> r = BbcDecode(overrun);
    ASSERT_FALSE(r.ok()) << extra;
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
}

TEST(BbcFuzzTest, ExtendedFillVarintOverflowRejected) {
  // Regression for the decoder bound check: an extended-fill atom carries
  // its length as an untrusted varint, so a crafted stream can claim a
  // fill of nearly 2^64 bytes. A bound of the form
  // `size + fill_len + literals > expected` wraps around and lets the
  // decoder attempt the allocation; the overflow-safe check must reject
  // the atom outright.
  const uint8_t control_extended_with_literals = 0x7F;  // F=0 LLLL=15 TTT=7
  const uint8_t control_extended_plain = 0x78;          // F=0 LLLL=15 TTT=0
  const std::vector<uint64_t> huge = {
      UINT64_MAX, UINT64_MAX - 7, UINT64_MAX - 255, uint64_t{1} << 63,
      (uint64_t{1} << 63) + 1};
  for (uint64_t fill_len : huge) {
    for (uint8_t control :
         {control_extended_with_literals, control_extended_plain}) {
      BbcEncoded enc;
      enc.bit_count = 4096;
      enc.data.push_back(control);
      uint64_t v = fill_len;
      while (v >= 0x80) {
        enc.data.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
      }
      enc.data.push_back(static_cast<uint8_t>(v));
      // Literal payload bytes for the TTT=7 variant (fewer than claimed is
      // also fine -- the atom must already be dead at the bound check).
      for (int i = 0; i < 7; ++i) enc.data.push_back(0xAB);
      Result<Bitvector> r = BbcDecode(enc);
      ASSERT_FALSE(r.ok()) << fill_len << " control=" << int(control);
      EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
    }
  }
}

TEST(BbcFuzzTest, BorrowingOverloadMatchesOwnedDecode) {
  // The store's zero-copy path decodes straight from the blob's byte
  // vector; it must agree with the BbcEncoded-based decode on both valid
  // and mutated streams.
  Rng rng(105);
  Bitvector bv(3000);
  for (int i = 0; i < 120; ++i) bv.Set(rng.UniformInt(0, 2999));
  const BbcEncoded enc = BbcEncode(bv);
  Result<Bitvector> borrowed = BbcDecode(enc.data, enc.bit_count);
  ASSERT_TRUE(borrowed.ok());
  EXPECT_EQ(borrowed.value(), bv);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = enc.data;
    const size_t pos = rng.UniformInt(0, mutated.size() - 1);
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    Result<Bitvector> a = BbcDecode(mutated, enc.bit_count);
    BbcEncoded owned;
    owned.bit_count = enc.bit_count;
    owned.data = mutated;
    Result<Bitvector> b = BbcDecode(owned);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_EQ(a.value(), b.value());
  }
}

TEST(WahFuzzTest, TruncationsNeverCrash) {
  Bitvector bv = Bitvector::AllOnes(8'000);
  bv.Clear(3);
  bv.Clear(7000);
  const WahEncoded original = WahEncode(bv);
  for (size_t keep = 0; keep < original.words.size(); ++keep) {
    WahEncoded truncated;
    truncated.bit_count = original.bit_count;
    truncated.words.assign(original.words.begin(),
                           original.words.begin() + keep);
    EXPECT_FALSE(WahDecode(truncated).ok()) << keep;
  }
}

TEST(WahFuzzTest, RandomWordStreamsNeverCrash) {
  Rng rng(103);
  int ok_count = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    WahEncoded enc;
    enc.bit_count = rng.UniformInt(0, 4096);
    const uint64_t len = rng.UniformInt(0, 32);
    for (uint64_t i = 0; i < len; ++i) {
      enc.words.push_back(static_cast<uint32_t>(rng.UniformInt(0, UINT32_MAX)));
    }
    Result<Bitvector> r = WahDecode(enc);
    if (r.ok()) {
      ++ok_count;
      EXPECT_EQ(r.value().size(), enc.bit_count);
      EXPECT_EQ(WahDecodeUnchecked(WahEncode(r.value())), r.value());
    }
  }
  EXPECT_LT(ok_count, 3000);
}

TEST(IntegrationTest, Cardinality200MatchesNaive) {
  // The paper's second data-set configuration (C = 200): full pipeline
  // spot-check across encodings and components.
  Column col = GenerateZipfColumn(
      {.rows = 20'000, .cardinality = 200, .zipf_z = 1.0, .seed = 200});
  std::vector<QuerySet> sets = GeneratePaperQuerySets(200, 7, 3);
  for (EncodingKind enc : BasicEncodingKinds()) {
    for (uint32_t n : {1u, 2u}) {
      Decomposition d = ChooseSpaceOptimalBases(200, n, enc).value();
      BitmapIndex index = BitmapIndex::Build(col, d, enc, n == 2);
      QueryExecutor exec(&index, {});
      for (const QuerySet& set : sets) {
        for (const MembershipQuery& q : set.queries) {
          ASSERT_EQ(exec.EvaluateMembership(q.values),
                    NaiveEvaluateMembership(col, q.values))
              << EncodingKindName(enc) << " n=" << n;
        }
      }
    }
  }
}

TEST(IntegrationTest, SingleRowAndTwoValueDomains) {
  // Degenerate shapes: 1 row, C = 2, every encoding.
  Column col;
  col.cardinality = 2;
  col.values = {1};
  for (EncodingKind enc : AllEncodingKinds()) {
    BitmapIndex index = BitmapIndex::Build(
        col, Decomposition::SingleComponent(2), enc, false);
    QueryExecutor exec(&index, {});
    EXPECT_EQ(exec.EvaluateInterval({0, 0}).Count(), 0u)
        << EncodingKindName(enc);
    EXPECT_EQ(exec.EvaluateInterval({1, 1}).Count(), 1u)
        << EncodingKindName(enc);
    EXPECT_EQ(exec.EvaluateInterval({0, 1}).Count(), 1u)
        << EncodingKindName(enc);
  }
}

TEST(IntegrationTest, AllValuesEqualColumn) {
  Column col;
  col.cardinality = 10;
  col.values.assign(500, 7);
  for (EncodingKind enc : AllEncodingKinds()) {
    BitmapIndex index = BitmapIndex::Build(
        col, Decomposition::SingleComponent(10), enc, true);
    QueryExecutor exec(&index, {});
    EXPECT_EQ(exec.EvaluateInterval({7, 7}).Count(), 500u);
    EXPECT_EQ(exec.EvaluateInterval({0, 6}).Count(), 0u);
    EXPECT_EQ(exec.EvaluateInterval({8, 9}).Count(), 0u);
  }
}

}  // namespace
}  // namespace bix
