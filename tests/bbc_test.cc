#include <gtest/gtest.h>

#include "compress/bbc.h"
#include "compress/bytes.h"
#include "util/rng.h"

namespace bix {
namespace {

Bitvector RandomBitvector(uint64_t n, double density, Rng* rng) {
  Bitvector bv(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

void ExpectRoundtrip(const Bitvector& bv) {
  BbcEncoded enc = BbcEncode(bv);
  Result<Bitvector> dec = BbcDecode(enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec.value(), bv);
  EXPECT_EQ(BbcDecodeUnchecked(enc), bv);
}

TEST(BytesTest, RoundtripVariousSizes) {
  Rng rng(1);
  for (uint64_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    Bitvector bv = RandomBitvector(n, 0.5, &rng);
    std::vector<uint8_t> bytes = BitvectorToBytes(bv);
    EXPECT_EQ(bytes.size(), (n + 7) / 8);
    EXPECT_EQ(BitvectorFromBytes(bytes, n), bv);
  }
}

TEST(BytesTest, ByteOrderIsLsbFirst) {
  Bitvector bv(16);
  bv.Set(0);   // byte 0, bit 0
  bv.Set(9);   // byte 1, bit 1
  std::vector<uint8_t> bytes = BitvectorToBytes(bv);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
}

TEST(BbcTest, EmptyBitmap) {
  Bitvector bv(0);
  ExpectRoundtrip(bv);
  EXPECT_EQ(BbcEncode(bv).data.size(), 0u);
}

TEST(BbcTest, AllZerosCompressesToFewBytes) {
  Bitvector bv(1'000'000);
  BbcEncoded enc = BbcEncode(bv);
  EXPECT_LE(enc.data.size(), 8u);  // control byte + varint
  ExpectRoundtrip(bv);
}

TEST(BbcTest, AllOnesCompressesToFewBytes) {
  Bitvector bv = Bitvector::AllOnes(1'000'000);
  BbcEncoded enc = BbcEncode(bv);
  // 124999 full 0xFF bytes + a literal tail byte (size not multiple of 8
  // keeps padding zero -> last byte is a literal).
  EXPECT_LE(enc.data.size(), 8u);
  ExpectRoundtrip(bv);
}

TEST(BbcTest, AllOnesNonByteAligned) {
  for (uint64_t n : {1u, 7u, 9u, 63u, 65u, 12345u}) {
    ExpectRoundtrip(Bitvector::AllOnes(n));
  }
}

TEST(BbcTest, SingleBitPositions) {
  for (uint64_t pos : {0u, 1u, 7u, 8u, 100u, 9999u}) {
    Bitvector bv(10000);
    bv.Set(pos);
    BbcEncoded enc = BbcEncode(bv);
    EXPECT_LE(enc.data.size(), 12u) << pos;
    ExpectRoundtrip(bv);
  }
}

TEST(BbcTest, SparseBitmapCompressesWell) {
  Rng rng(3);
  Bitvector bv(1'000'000);
  for (int i = 0; i < 100; ++i) {
    bv.Set(rng.UniformInt(0, 999'999));
  }
  BbcEncoded enc = BbcEncode(bv);
  EXPECT_LT(enc.data.size(), 125'000u / 10);  // >10x compression
  ExpectRoundtrip(bv);
}

TEST(BbcTest, IncompressibleInputOverheadBounded) {
  Rng rng(4);
  Bitvector bv = RandomBitvector(80'000, 0.5, &rng);
  BbcEncoded enc = BbcEncode(bv);
  // Worst case one control byte per 7 literals: 8/7 of verbatim size.
  EXPECT_LE(enc.data.size(), (10'000u * 8) / 7 + 16);
  ExpectRoundtrip(bv);
}

TEST(BbcTest, AlternatingRunsAndLiterals) {
  Bitvector bv(100'000);
  // Pattern: 100-bit one-runs every 1000 bits plus scattered noise.
  for (uint64_t start = 0; start + 100 < 100'000; start += 1000) {
    for (uint64_t i = start; i < start + 100; ++i) bv.Set(i);
  }
  for (uint64_t i = 500; i < 100'000; i += 977) bv.Set(i);
  ExpectRoundtrip(bv);
}

class BbcDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(BbcDensitySweep, RoundtripRandomDensities) {
  Rng rng(42);
  const double density = GetParam();
  for (uint64_t n : {1u, 8u, 100u, 4096u, 50'000u}) {
    ExpectRoundtrip(RandomBitvector(n, density, &rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, BbcDensitySweep,
                         ::testing::Values(0.0, 0.001, 0.01, 0.1, 0.3, 0.5,
                                           0.7, 0.9, 0.99, 0.999, 1.0));

TEST(BbcTest, DecodeRejectsTruncatedStream) {
  Bitvector bv = Bitvector::AllOnes(10'000);
  BbcEncoded enc = BbcEncode(bv);
  enc.data.pop_back();
  EXPECT_FALSE(BbcDecode(enc).ok());
}

TEST(BbcTest, DecodeRejectsOverlongStream) {
  Bitvector bv(100);
  bv.Set(5);
  BbcEncoded enc = BbcEncode(bv);
  enc.data.push_back(0x07);  // extra atom with 7 literals, truncated
  EXPECT_FALSE(BbcDecode(enc).ok());
}

TEST(BbcTest, DecodeRejectsWrongBitCount) {
  Bitvector bv(1000);
  bv.Set(1);
  BbcEncoded enc = BbcEncode(bv);
  enc.bit_count = 2000;  // stream covers fewer bytes than promised
  EXPECT_FALSE(BbcDecode(enc).ok());
}

TEST(BbcTest, DecodeRejectsNonzeroPadding) {
  // Hand-craft a stream whose final (partial) byte has padding bits set:
  // bit_count = 4 but the literal byte is 0xFF.
  BbcEncoded enc;
  enc.bit_count = 4;
  enc.data = {0x01, 0xFF};  // control: fill_len=0, literals=1; literal 0xFF
  EXPECT_FALSE(BbcDecode(enc).ok());
}

TEST(BbcTest, CompressedSizeMonotoneInRunStructure) {
  // A bitmap with long runs must compress better than the same bit count
  // scattered uniformly.
  const uint64_t n = 1'000'000;
  Bitvector runs(n);
  for (uint64_t i = 0; i < 100'000; ++i) runs.Set(i);  // one long run
  Rng rng(8);
  Bitvector scattered(n);
  for (uint64_t i = 0; i < 100'000; ++i) {
    scattered.Set(rng.UniformInt(0, n - 1));
  }
  EXPECT_LT(BbcEncode(runs).data.size(), BbcEncode(scattered).data.size());
}

}  // namespace
}  // namespace bix
