// Connection-lifecycle chaos suite for the TCP serving tier: 8 concurrent
// clients, each with a seeded NetFaultInjector sabotaging its own send
// path — dribbled writes, corrupted bytes, mid-send RSTs, stalls — against
// one live server. The tentpole contract under test:
//
//   every Call either returns a response bit-identical to a direct
//   QueryExecutor run, or a typed error — never a hang past the client's
//   I/O deadline (plus slack), never a torn frame;
//
// and the server survives the whole storm: it keeps serving clean clients
// afterwards, drains gracefully, and force-closes nothing. CI also builds
// this suite with -DBIX_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "core/bitmap_index_facade.h"
#include "net/client.h"
#include "net/net_fault_injector.h"
#include "net/tcp_server.h"
#include "server/query_service.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

constexpr uint32_t kClients = 8;
constexpr uint32_t kQueriesPerClient = 40;
// A sabotaged call may burn the full client I/O budget (e.g. a corrupted
// request_id leaves the client waiting for an echo that never matches);
// anything past budget + slack is a hang, which the suite forbids.
constexpr double kIoTimeoutSeconds = 3.0;
constexpr double kHangSlackSeconds = 4.0;

struct NetChaosSetup {
  Column column;
  std::optional<BitmapIndex> index;
  std::optional<QueryService> service;
  std::optional<TcpServer> server;

  NetChaosSetup() {
    ColumnSpec spec;
    spec.rows = 20'000;
    spec.cardinality = 64;
    spec.zipf_z = 1.0;
    spec.seed = 11;
    column = GenerateZipfColumn(spec);
    IndexConfig config;
    config.encoding = EncodingKind::kInterval;
    index.emplace(BuildIndex(column, config).value());
    ServiceOptions svc;
    svc.num_workers = 4;
    // The suite asserts exact per-query outcomes; the breaker would
    // legitimately shed load under this churn and blur them.
    svc.brownout.enabled = false;
    service.emplace(&*index, svc);
    TcpServerOptions opts;
    opts.max_connections = 32;
    server.emplace(&*service, opts);
    BIX_CHECK_MSG(server->Start().ok(), "server failed to start");
  }

  NetRequest MakeQuery(Rng* rng, uint32_t request_id) const {
    NetRequest req;
    req.request_id = request_id;
    if (rng->Bernoulli(0.5)) {
      req.type = FrameType::kInterval;
      req.lo = static_cast<uint32_t>(rng->UniformInt(0, 63));
      req.hi = static_cast<uint32_t>(rng->UniformInt(req.lo, 63));
    } else {
      req.type = FrameType::kMembership;
      const uint32_t k = static_cast<uint32_t>(rng->UniformInt(1, 6));
      for (uint32_t j = 0; j < k; ++j) {
        req.values.push_back(static_cast<uint32_t>(rng->UniformInt(0, 63)));
      }
    }
    return req;
  }

  Bitvector Reference(const NetRequest& req) const {
    QueryExecutor executor(&*index, ExecutorOptions{});
    return req.type == FrameType::kInterval
               ? executor.EvaluateInterval(IntervalQuery{req.lo, req.hi, false})
               : executor.EvaluateMembership(req.values);
  }
};

bool IsTypedError(Status::Code code) {
  switch (code) {
    case Status::Code::kInvalidArgument:
    case Status::Code::kOutOfRange:
    case Status::Code::kCorruption:
    case Status::Code::kNotSupported:
    case Status::Code::kUnavailable:
    case Status::Code::kDeadlineExceeded:
    case Status::Code::kCancelled:
      return true;
    case Status::Code::kOk:
      return false;
  }
  return false;
}

TEST(NetChaosTest, FlakyClientsSeeBitIdenticalResponsesOrTypedErrors) {
  NetChaosSetup setup;

  NetFaultOptions fault_opts;
  fault_opts.seed = 20260808;
  fault_opts.chunk_prob = 0.30;
  fault_opts.corrupt_prob = 0.06;
  fault_opts.reset_prob = 0.06;
  fault_opts.stall_prob = 0.10;
  fault_opts.stall_seconds = 0.004;
  NetFaultInjector injector(fault_opts);

  std::atomic<uint64_t> ok_calls{0};
  std::atomic<uint64_t> typed_errors{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> hangs{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (uint32_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      uint64_t conn_seq = 0;
      auto connect = [&] {
        NetClientOptions copts;
        copts.io_timeout_seconds = kIoTimeoutSeconds;
        copts.injector = &injector;
        // Distinct deterministic fault stream per (thread, reconnect).
        copts.conn_id = uint64_t{t} * 1000 + conn_seq++;
        return NetClient::Connect("127.0.0.1", setup.server->port(), copts);
      };
      Result<NetClient> client = connect();
      ASSERT_TRUE(client.ok());
      for (uint32_t i = 0; i < kQueriesPerClient; ++i) {
        if (!client.value().connected()) {
          client = connect();
          if (!client.ok()) return;
          reconnects.fetch_add(1);
        }
        const NetRequest req = setup.MakeQuery(&rng, i + 1);
        const Bitvector expected = setup.Reference(req);
        NetFaultInjector::SendFault applied = NetFaultInjector::SendFault::kNone;
        const auto started = std::chrono::steady_clock::now();
        Result<NetResponse> resp = client.value().Call(req, &applied);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        if (elapsed > kIoTimeoutSeconds + kHangSlackSeconds) {
          hangs.fetch_add(1);
        }
        if (resp.ok() && resp.value().code == Status::Code::kOk) {
          // A corrupted request may still execute (the flip landed in a
          // header field or mutated the query into another valid one), so
          // bit-identity to *this* query is only owed when the request
          // went out intact.
          if (applied != NetFaultInjector::SendFault::kCorrupt) {
            ok_calls.fetch_add(1);
            if (resp.value().row_bits != expected.size() ||
                resp.value().words != expected.words()) {
              torn.fetch_add(1);
            }
          }
        } else {
          const Status::Code code =
              resp.ok() ? resp.value().code : resp.status().code();
          if (IsTypedError(code)) {
            typed_errors.fetch_add(1);
          } else {
            ADD_FAILURE() << "client " << t << " call " << i
                          << ": untyped outcome "
                          << (resp.ok() ? "ok-frame"
                                        : resp.status().ToString());
          }
          // Connection state is unknowable after a sabotaged exchange:
          // start fresh, like a real client would.
          client.value().Close();
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();

  EXPECT_EQ(torn.load(), 0u) << "bit-divergent response under chaos";
  EXPECT_EQ(hangs.load(), 0u) << "a client blocked past deadline + slack";
  EXPECT_GT(ok_calls.load(), 0u);
  EXPECT_GT(typed_errors.load(), 0u) << "faults were injected; some calls "
                                        "must have failed with typed errors";
  EXPECT_GT(reconnects.load(), 0u);

  // The injector demonstrably fired every fault class (deterministic:
  // draws depend only on seed, conn_id, op index).
  const NetFaultInjector::Counters fired = injector.counters();
  EXPECT_GT(fired.chunked, 0u);
  EXPECT_GT(fired.corrupted, 0u);
  EXPECT_GT(fired.resets, 0u);
  EXPECT_GT(fired.stalls, 0u);

  // The server caught the sabotage as typed protocol errors, survived the
  // churn, and still serves a clean client afterwards.
  const TcpServerStats mid = setup.server->stats();
  EXPECT_GT(mid.parse_errors, 0u);
  NetClient clean =
      NetClient::Connect("127.0.0.1", setup.server->port()).value();
  NetRequest probe;
  probe.type = FrameType::kInterval;
  probe.lo = 5;
  probe.hi = 40;
  const Bitvector expected = setup.Reference(probe);
  const NetResponse after = clean.Call(probe).value();
  ASSERT_EQ(after.code, Status::Code::kOk);
  EXPECT_EQ(after.words, expected.words());
  clean.Close();

  setup.server->Shutdown();
  const TcpServerStats stats = setup.server->stats();
  EXPECT_EQ(stats.force_closes, 0u) << "drain left wedged connections";
  EXPECT_EQ(stats.active, 0u);
}

// Mid-send RSTs with queries in flight: killed clients must increment the
// disconnect-cancel counter (their queries' CancelTokens fired) without
// disturbing any other client's results.
TEST(NetChaosTest, AbortedClientsCancelInFlightWorkOthersUnaffected) {
  NetChaosSetup setup;

  std::atomic<uint64_t> clean_ok{0};
  std::atomic<bool> stop{false};
  // One well-behaved client verifying bit-identity throughout the storm.
  std::thread clean_thread([&] {
    Rng rng(77);
    NetClient client =
        NetClient::Connect("127.0.0.1", setup.server->port()).value();
    while (!stop.load()) {
      const NetRequest req = setup.MakeQuery(&rng, 1);
      const Bitvector expected = setup.Reference(req);
      const Result<NetResponse> resp = client.Call(req);
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp.value().code, Status::Code::kOk);
      ASSERT_EQ(resp.value().words, expected.words()) << "torn clean response";
      clean_ok.fetch_add(1);
    }
  });

  // A wave of clients that send a query and die immediately.
  std::vector<std::thread> killers;
  for (uint32_t t = 0; t < 8; ++t) {
    killers.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        Result<NetClient> c =
            NetClient::Connect("127.0.0.1", setup.server->port());
        if (!c.ok()) continue;
        NetRequest req;
        req.type = FrameType::kInterval;
        req.request_id = 1;
        req.lo = 0;
        req.hi = 63;
        const std::vector<uint8_t> bytes = EncodeRequest(req);
        // Pipeline a burst before dying: a single query can finish before
        // the server notices the disconnect (the faster the kernels, the
        // narrower that window), but a queued burst cannot all drain, so
        // some query is reliably in flight when the socket vanishes.
        for (int burst = 0; burst < 8; ++burst) {
          (void)c.value().SendBytes(bytes.data(), bytes.size());
        }
        if (t % 2 == 0) {
          c.value().Abort();  // RST
        } else {
          c.value().Close();  // FIN with a query possibly in flight
        }
      }
    });
  }
  for (std::thread& th : killers) th.join();
  stop.store(true);
  clean_thread.join();

  EXPECT_GT(clean_ok.load(), 0u);
  setup.server->Shutdown();
  const TcpServerStats stats = setup.server->stats();
  // 48 kill rounds; at least some queries were still in flight when their
  // client vanished, and each fired its token.
  EXPECT_GT(stats.disconnect_cancels, 0u);
  EXPECT_EQ(stats.force_closes, 0u);
}

}  // namespace
}  // namespace bix
