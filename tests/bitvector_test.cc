#include <gtest/gtest.h>

#include <vector>

#include "bitvector/bitvector.h"
#include "util/rng.h"

namespace bix {
namespace {

TEST(BitvectorTest, EmptyAndSized) {
  Bitvector empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Count(), 0u);

  Bitvector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_EQ(bv.byte_size(), 16u);  // 2 words
}

TEST(BitvectorTest, SetGetClear) {
  Bitvector bv(130);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitvectorTest, FromPositions) {
  Bitvector bv = Bitvector::FromPositions(10, {1, 3, 7});
  EXPECT_EQ(bv.Count(), 3u);
  EXPECT_TRUE(bv.Get(1));
  EXPECT_TRUE(bv.Get(3));
  EXPECT_TRUE(bv.Get(7));
}

TEST(BitvectorDeathTest, FromPositionsRejectsOutOfRange) {
  // Regression: positions are data-dependent input, and Set's BIX_DCHECK
  // compiles away in Release — an out-of-range position used to write past
  // the word array. The bound must be a hard check in every build type.
  EXPECT_DEATH(Bitvector::FromPositions(10, {1, 10}), "out of range");
  EXPECT_DEATH(Bitvector::FromPositions(0, {0}), "out of range");
  // Position exactly on a word boundary past the last partial word.
  EXPECT_DEATH(Bitvector::FromPositions(64, {64}), "out of range");
}

TEST(BitvectorTest, AllOnesKeepsTrailingBitsZero) {
  for (uint64_t n : {1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    Bitvector bv = Bitvector::AllOnes(n);
    EXPECT_EQ(bv.Count(), n) << n;
    // Not should produce all zeros.
    bv.NotSelf();
    EXPECT_EQ(bv.Count(), 0u) << n;
  }
}

TEST(BitvectorTest, NotRespectsSize) {
  Bitvector bv(70);
  bv.Set(5);
  bv.NotSelf();
  EXPECT_EQ(bv.Count(), 69u);
  EXPECT_FALSE(bv.Get(5));
  EXPECT_TRUE(bv.Get(69));
}

TEST(BitvectorTest, LogicalOps) {
  Bitvector a = Bitvector::FromPositions(100, {1, 2, 3, 70});
  Bitvector b = Bitvector::FromPositions(100, {2, 3, 4, 71});

  Bitvector and_r = Bitvector::And(a, b);
  EXPECT_EQ(and_r, Bitvector::FromPositions(100, {2, 3}));

  Bitvector or_r = Bitvector::Or(a, b);
  EXPECT_EQ(or_r, Bitvector::FromPositions(100, {1, 2, 3, 4, 70, 71}));

  Bitvector xor_r = Bitvector::Xor(a, b);
  EXPECT_EQ(xor_r, Bitvector::FromPositions(100, {1, 4, 70, 71}));

  Bitvector not_r = Bitvector::Not(a);
  EXPECT_EQ(not_r.Count(), 96u);
  EXPECT_FALSE(not_r.Get(1));
  EXPECT_TRUE(not_r.Get(0));
}

TEST(BitvectorTest, InPlaceOpsMatchStatic) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t n = rng.UniformInt(1, 500);
    Bitvector a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) a.Set(i);
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    Bitvector c = a;
    c.AndWith(b);
    EXPECT_EQ(c, Bitvector::And(a, b));
    c = a;
    c.OrWith(b);
    EXPECT_EQ(c, Bitvector::Or(a, b));
    c = a;
    c.XorWith(b);
    EXPECT_EQ(c, Bitvector::Xor(a, b));
  }
}

TEST(BitvectorTest, DeMorgan) {
  Rng rng(7);
  const uint64_t n = 321;
  Bitvector a(n), b(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.5)) b.Set(i);
  }
  // ~(a & b) == ~a | ~b
  Bitvector lhs = Bitvector::Not(Bitvector::And(a, b));
  Bitvector rhs = Bitvector::Or(Bitvector::Not(a), Bitvector::Not(b));
  EXPECT_EQ(lhs, rhs);
  // a ^ b == (a | b) & ~(a & b)
  Bitvector x1 = Bitvector::Xor(a, b);
  Bitvector x2 = Bitvector::And(Bitvector::Or(a, b),
                                Bitvector::Not(Bitvector::And(a, b)));
  EXPECT_EQ(x1, x2);
}

TEST(BitvectorTest, ForEachSetBit) {
  Bitvector bv = Bitvector::FromPositions(200, {0, 63, 64, 65, 199});
  std::vector<uint64_t> seen;
  bv.ForEachSetBit([&](uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 63, 64, 65, 199}));
}

TEST(BitvectorTest, EqualityIncludesSize) {
  Bitvector a(64), b(65);
  EXPECT_NE(a, b);
  Bitvector c(64);
  EXPECT_EQ(a, c);
  c.Set(0);
  EXPECT_NE(a, c);
}

TEST(BitvectorTest, CountLargeRandom) {
  Rng rng(5);
  Bitvector bv(10000);
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.37)) {
      bv.Set(i);
      ++expected;
    }
  }
  EXPECT_EQ(bv.Count(), expected);
}

}  // namespace
}  // namespace bix
