// Permutation-invariance harness for the row-reordering preprocessing
// pass (src/index/reorder, DESIGN.md section 18). The contract under
// test: a reordered index is *invisible* — every strategy, over every
// encoding and codec, through the plain and the delta-overlay writable
// path, produces bit-identical query results to the unreordered build —
// while the compressed tier only ever gets smaller on clustered inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/bitmap_index_facade.h"
#include "core/index_io.h"
#include "core/writable_index.h"
#include "index/reorder.h"
#include "index/rid_index.h"
#include "query/executor.h"
#include "server/query_service.h"
#include "workload/column_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

// The adversarial table of the issue: heavy Zipf skew puts one giant value
// block next to a long sparse tail, the worst case for any ordering
// heuristic that only helps "nice" distributions.
Column AdversarialZipf(uint64_t rows, uint32_t cardinality, uint64_t seed) {
  return GenerateZipfColumn(
      {.rows = rows, .cardinality = cardinality, .zipf_z = 2.5, .seed = seed});
}

// --- GrayRank ----------------------------------------------------------

// Digit vector of `value` under `d`, msb first.
std::vector<uint32_t> Digits(const Decomposition& d, uint32_t value) {
  std::vector<uint32_t> out;
  for (uint32_t comp = d.num_components(); comp >= 1; --comp) {
    out.push_back(d.Digit(value, comp));
  }
  return out;
}

TEST(GrayRankTest, BijectionWithUnitDigitStepsOnFullDomains) {
  const std::vector<std::vector<uint32_t>> base_sets = {
      {10}, {5, 4}, {3, 3, 3}, {2, 2, 2, 2}};
  for (const auto& bases : base_sets) {
    uint32_t domain = 1;
    for (uint32_t b : bases) domain *= b;
    Decomposition d = Decomposition::Make(domain, bases).value();

    // Ranks are a permutation of [0, domain).
    std::vector<uint32_t> by_rank(domain, domain);
    for (uint32_t v = 0; v < domain; ++v) {
      const uint64_t rank = GrayRank(d, v);
      ASSERT_LT(rank, domain);
      ASSERT_EQ(by_rank[rank], domain) << "duplicate rank " << rank;
      by_rank[rank] = v;
    }
    // The defining Gray property: walking the ranks in order changes
    // exactly one digit, by exactly one.
    for (uint32_t r = 1; r < domain; ++r) {
      const std::vector<uint32_t> a = Digits(d, by_rank[r - 1]);
      const std::vector<uint32_t> b = Digits(d, by_rank[r]);
      uint32_t changed = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
          ++changed;
          EXPECT_EQ(std::max(a[i], b[i]) - std::min(a[i], b[i]), 1u)
              << "rank step " << r;
        }
      }
      EXPECT_EQ(changed, 1u) << "rank step " << r;
    }
  }
}

TEST(GrayRankTest, SingleComponentGrayIsValueOrder) {
  // With one component there is nothing to reflect: rank == value, so
  // kGrayCode degenerates to kLexicographic exactly as documented.
  Decomposition d = Decomposition::SingleComponent(17);
  for (uint32_t v = 0; v < 17; ++v) EXPECT_EQ(GrayRank(d, v), v);
}

// --- Permutation mechanics ---------------------------------------------

TEST(RowOrderTest, ComputeProducesAStablePermutation) {
  Column col = GenerateZipfColumn(
      {.rows = 500, .cardinality = 12, .zipf_z = 1.0, .seed = 7});
  Decomposition d = Decomposition::Make(12, {4, 3}).value();
  for (ReorderStrategy strategy : AllReorderStrategies()) {
    SCOPED_TRACE(ReorderStrategyName(strategy));
    const std::vector<uint32_t> order = ComputeRowOrder(col, d, strategy);
    ASSERT_EQ(order.size(), col.row_count());
    EXPECT_TRUE(ValidateRowOrder(order));
    // Stability: within a block of equal values, original arrival order.
    for (size_t j = 1; j < order.size(); ++j) {
      if (col.values[order[j - 1]] == col.values[order[j]]) {
        EXPECT_LT(order[j - 1], order[j]) << "position " << j;
      }
    }
    // Each value's rows form one contiguous block (every strategy orders
    // by a per-value key, so blocks never interleave).
    std::vector<bool> block_closed(col.cardinality, false);
    uint32_t current = col.values[order[0]];
    for (size_t j = 1; j < order.size(); ++j) {
      const uint32_t v = col.values[order[j]];
      if (v == current) continue;
      ASSERT_FALSE(block_closed[v]) << "value " << v << " split into blocks";
      block_closed[current] = true;
      current = v;
    }
  }
}

TEST(RowOrderTest, PermutationRoundTripFuzz) {
  std::mt19937_64 rng(2026);
  for (int iter = 0; iter < 25; ++iter) {
    const uint64_t rows = 1 + rng() % 700;
    const uint32_t cardinality = 2 + static_cast<uint32_t>(rng() % 30);
    Column col = GenerateZipfColumn({.rows = rows,
                                     .cardinality = cardinality,
                                     .zipf_z = (iter % 4) * 0.8,
                                     .seed = rng()});
    Decomposition d = Decomposition::SingleComponent(cardinality);
    const ReorderStrategy strategy =
        AllReorderStrategies()[iter % AllReorderStrategies().size()];
    const std::vector<uint32_t> p = ComputeRowOrder(col, d, strategy);
    ASSERT_TRUE(ValidateRowOrder(p));
    const std::vector<uint32_t> inv = InvertRowOrder(p);
    ASSERT_EQ(inv.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p[inv[i]], i);
      EXPECT_EQ(inv[p[i]], i);
    }
    // ApplyRowOrder matches its defining equation.
    const Column permuted = ApplyRowOrder(col, p);
    ASSERT_EQ(permuted.row_count(), col.row_count());
    for (size_t j = 0; j < p.size(); ++j) {
      EXPECT_EQ(permuted.values[j], col.values[p[j]]);
    }
  }
}

TEST(RowOrderTest, ValidateRejectsNonBijections) {
  EXPECT_TRUE(ValidateRowOrder({}));
  EXPECT_TRUE(ValidateRowOrder({0}));
  EXPECT_TRUE(ValidateRowOrder({2, 0, 1}));
  EXPECT_FALSE(ValidateRowOrder({0, 0}));     // duplicate
  EXPECT_FALSE(ValidateRowOrder({1, 2}));     // out of range
  EXPECT_FALSE(ValidateRowOrder({3, 1, 0}));  // out of range
}

TEST(RowOrderTest, MapToOriginalRidsMovesEveryBitHome) {
  std::mt19937_64 rng(99);
  const std::vector<uint32_t> p = {3, 1, 4, 0, 2};
  // Index space larger than the order: the tail is appended rows, which
  // must map to themselves.
  Bitvector in(8);
  for (uint64_t j = 0; j < 8; ++j) {
    if (rng() % 2) in.Set(j);
  }
  const Bitvector out = MapToOriginalRids(in, p);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.Count(), in.Count());
  for (uint64_t j = 0; j < 8; ++j) {
    const uint64_t home = j < p.size() ? p[j] : j;
    EXPECT_EQ(out.Get(home), in.Get(j)) << "bit " << j;
  }
  // Identity order is a pass-through.
  EXPECT_EQ(MapToOriginalRids(in, {}), in);
}

TEST(RowOrderTest, IdentityOrdersAreDroppedAtBuild) {
  // An already-sorted column: lexicographic reorder is the identity, and
  // the facade must not saddle the index with a useless permutation.
  Column col;
  col.cardinality = 8;
  for (uint32_t v = 0; v < 8; ++v) {
    for (int k = 0; k < 5; ++k) col.values.push_back(v);
  }
  IndexConfig config;
  config.reorder = ReorderStrategy::kLexicographic;
  Result<BitmapIndex> index = BuildIndex(col, config);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index.value().reordered());
}

// --- The invariance matrix ---------------------------------------------
// Every strategy x all encodings x all codecs: interval, membership, and
// count-only results over a reordered index are bit-identical to the
// naive scan (and therefore to the unreordered index, which the seed
// suites already hold to the same oracle).

struct MatrixParam {
  EncodingKind encoding;
  std::vector<uint32_t> bases;
};

class ReorderInvarianceMatrix : public ::testing::TestWithParam<MatrixParam> {
};

void ExpectInvariant(const Column& col, const IndexConfig& config,
                     const std::string& context) {
  Result<BitmapIndex> built = BuildIndex(col, config);
  ASSERT_TRUE(built.ok()) << context << ": " << built.status().ToString();
  const BitmapIndex& index = built.value();
  const uint32_t c = col.cardinality;
  QueryExecutor exec(&index, {});
  for (uint32_t lo = 0; lo < c; lo += 3) {
    for (uint32_t hi = lo; hi < c; hi += 4) {
      const Bitvector expected = NaiveEvaluateInterval(col, {lo, hi});
      EXPECT_EQ(exec.EvaluateInterval({lo, hi}), expected)
          << context << " [" << lo << "," << hi << "]";
      // Count-only path: permutations preserve popcounts, so the count
      // entry point must agree without any mapping.
      std::vector<ExprPtr> exprs;
      exprs.push_back(exec.Rewrite({lo, hi}));
      EXPECT_EQ(exec.EvaluateCountRewritten(exprs), expected.Count())
          << context << " count [" << lo << "," << hi << "]";
    }
  }
  const std::vector<std::vector<uint32_t>> member_sets = {
      {0}, {c - 1}, {1, 4, 7}, {0, c / 2, c - 1, c / 3}};
  for (const auto& values : member_sets) {
    EXPECT_EQ(exec.EvaluateMembership(values),
              NaiveEvaluateMembership(col, values))
        << context << " membership";
  }
}

TEST_P(ReorderInvarianceMatrix, AllStrategiesAllCodecsMatchNaiveScan) {
  const MatrixParam& p = GetParam();
  const Column random_table = GenerateZipfColumn(
      {.rows = 1500, .cardinality = 24, .zipf_z = 0.0, .seed = 17});
  const Column adversarial = AdversarialZipf(1500, 24, 18);
  for (const Column* col : {&random_table, &adversarial}) {
    for (StorageCodec codec :
         {StorageCodec::kVerbatim, StorageCodec::kBbc, StorageCodec::kWah,
          StorageCodec::kRoaring}) {
      for (ReorderStrategy strategy : AllReorderStrategies()) {
        IndexConfig config;
        config.encoding = p.encoding;
        config.bases_msb_first = p.bases;
        config.codec = codec;
        config.reorder = strategy;
        ExpectInvariant(
            *col, config,
            std::string(col == &adversarial ? "zipf" : "random") + "/" +
                StorageCodecName(codec) + "/" + ReorderStrategyName(strategy));
      }
    }
  }
}

std::vector<MatrixParam> MatrixParams() {
  std::vector<MatrixParam> params;
  // Every encoding, multi-component to exercise the Gray reflection.
  for (EncodingKind enc : AllEncodingKinds()) params.push_back({enc, {6, 4}});
  // And single-component equality/interval for the degenerate path.
  params.push_back({EncodingKind::kEquality, {24}});
  params.push_back({EncodingKind::kInterval, {24}});
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, ReorderInvarianceMatrix, ::testing::ValuesIn(MatrixParams()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = EncodingKindName(info.param.encoding);
      if (name == "EI*") name = "EIstar";
      return name + "_" + std::to_string(info.param.bases.size()) + "comp";
    });

// --- RID-list index -----------------------------------------------------

TEST(ReorderRidListTest, ReorderedListsReturnOriginalRids) {
  Column col = AdversarialZipf(1200, 16, 5);
  Decomposition d = Decomposition::SingleComponent(16);
  const DiskModel disk;
  RidListIndex plain = RidListIndex::Build(col);
  for (ReorderStrategy strategy : AllReorderStrategies()) {
    SCOPED_TRACE(ReorderStrategyName(strategy));
    RidListIndex reordered =
        RidListIndex::Build(col, ComputeRowOrder(col, d, strategy));
    EXPECT_TRUE(ValidateRowOrder(reordered.row_order()));
    for (uint32_t lo = 0; lo < 16; lo += 3) {
      EXPECT_EQ(reordered.EvaluateInterval({lo, 15}, disk, nullptr),
                plain.EvaluateInterval({lo, 15}, disk, nullptr));
    }
    EXPECT_EQ(reordered.EvaluateMembership({0, 3, 9}, disk, nullptr),
              plain.EvaluateMembership({0, 3, 9}, disk, nullptr));
    // The physical payoff: each value's list is one contiguous position
    // range in the reordered row file.
    for (uint32_t v = 0; v < 16; ++v) {
      const std::vector<uint32_t>& list = reordered.ListForValue(v);
      for (size_t i = 1; i < list.size(); ++i) {
        EXPECT_EQ(list[i], list[i - 1] + 1) << "value " << v;
      }
    }
  }
}

// --- Persistence (format v4) -------------------------------------------

TEST(ReorderPersistenceTest, V4RoundTripCarriesThePermutation) {
  Column col = AdversarialZipf(2000, 20, 31);
  for (ReorderStrategy strategy : AllReorderStrategies()) {
    SCOPED_TRACE(ReorderStrategyName(strategy));
    IndexConfig config;
    config.encoding = EncodingKind::kInterval;
    config.bases_msb_first = {5, 4};
    config.codec = StorageCodec::kAuto;
    config.reorder = strategy;
    Result<BitmapIndex> built = BuildIndex(col, config);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(built.value().reordered());

    const std::string path = TempPath("reordered_v4.bix");
    ASSERT_TRUE(SaveIndex(built.value(), path).ok());
    IndexLoadInfo info;
    Result<BitmapIndex> loaded = LoadIndex(path, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(info.version, 4u);
    EXPECT_TRUE(info.checksummed);
    EXPECT_EQ(loaded.value().row_order(), built.value().row_order());
    EXPECT_EQ(loaded.value().TotalStoredBytes(),
              built.value().TotalStoredBytes());

    QueryExecutor exec(&loaded.value(), {});
    for (uint32_t lo = 0; lo < 20; lo += 3) {
      EXPECT_EQ(exec.EvaluateInterval({lo, 19}),
                NaiveEvaluateInterval(col, {lo, 19}));
    }
    std::remove(path.c_str());
  }
}

TEST(ReorderPersistenceTest, LegacyVersionsCannotCarryAPermutation) {
  Column col = GenerateZipfColumn(
      {.rows = 400, .cardinality = 10, .zipf_z = 1.0, .seed = 3});
  IndexConfig config;
  config.codec = StorageCodec::kBbc;
  config.reorder = ReorderStrategy::kGrayCode;
  Result<BitmapIndex> built = BuildIndex(col, config);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().reordered());
  for (uint32_t version : {1u, 2u, 3u}) {
    Status s =
        SaveIndexAtVersion(built.value(), TempPath("reordered_legacy.bix"),
                           version);
    ASSERT_FALSE(s.ok()) << "v" << version;
    EXPECT_EQ(s.code(), Status::Code::kNotSupported) << "v" << version;
  }
}

TEST(ReorderPersistenceTest, CorruptedRowOrderFailsTheLoad) {
  Column col = GenerateZipfColumn(
      {.rows = 600, .cardinality = 12, .zipf_z = 1.2, .seed = 13});
  IndexConfig config;
  config.codec = StorageCodec::kWah;
  config.reorder = ReorderStrategy::kHistogram;
  Result<BitmapIndex> built = BuildIndex(col, config);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().reordered());
  const std::string path = TempPath("corrupt_order.bix");
  ASSERT_TRUE(SaveIndex(built.value(), path).ok());

  // Flip one byte inside the row-order section. The header layout up to
  // the order is magic(4) version(4) encoding(1) policy(1) cardinality(4)
  // row_count(8) n(4) bases(4n) order_count(8) — so offset 40 sits in the
  // first order entry for this single-component index.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[40] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<BitmapIndex> loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

// --- Writable path: delta overlay over a reordered base ----------------

// Merged query results over {reordered base + overlay} must equal the
// naive scan of the current logical column with tombstones masked out —
// the same oracle the unreordered delta tests use.
void ExpectMergedQueriesMatchLogical(const WritableBitmapIndex& index,
                                     const std::string& context) {
  const IndexSnapshot snap = index.Snapshot();
  Column logical;
  logical.cardinality = index.cardinality();
  logical.values = index.LogicalValues();
  const Bitvector live = index.LiveMask();
  QueryExecutor exec(snap.base.get(), {});
  for (uint32_t lo = 0; lo < logical.cardinality; lo += 2) {
    for (uint32_t hi = lo; hi < logical.cardinality; hi += 3) {
      std::vector<ExprPtr> exprs;
      exprs.push_back(exec.Rewrite({lo, hi}));
      Result<Bitvector> got = exec.TryEvaluateRewrittenMerged(
          exprs, snap.delta->View(), ValueSet::Interval(lo, hi));
      ASSERT_TRUE(got.ok()) << context;
      Bitvector expected = NaiveEvaluateInterval(logical, {lo, hi});
      expected.AndWith(live);
      ASSERT_EQ(got.value(), expected)
          << context << " [" << lo << "," << hi << "]";
    }
  }
}

TEST(ReorderWritableTest, DeltaOverlayStaysInOriginalRidSpace) {
  constexpr uint32_t kC = 10;
  Column column = AdversarialZipf(300, kC, 23);
  for (ReorderStrategy strategy : AllReorderStrategies()) {
    const std::string name = ReorderStrategyName(strategy);
    SCOPED_TRACE(name);
    IndexConfig config;
    config.encoding = EncodingKind::kInterval;
    config.bases_msb_first = {5, 2};
    config.codec = StorageCodec::kAuto;
    config.reorder = strategy;
    auto index = WritableBitmapIndex::Create(FreshDir("reorder_delta_" + name),
                                             column, config);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    ASSERT_TRUE(index.value()->Snapshot().base->reordered());

    // Updates target original RIDs; the fold and the merge must translate.
    UpdateBatch b1;
    b1.inserts = {9, 0, 4, 4};
    b1.updates = {{2, 0, 9}, {7, 0, 0}, {299, 0, 1}};
    b1.deletes = {11, 301};
    ASSERT_TRUE(index.value()->ApplyBatch(b1).ok());
    ExpectMergedQueriesMatchLogical(*index.value(), name + "/after-batch");

    // Compaction folds the overlay into the reordered base; the folded
    // index must keep the permutation and keep answering in original RIDs.
    ASSERT_TRUE(index.value()->Compact(nullptr).ok());
    EXPECT_TRUE(index.value()->Snapshot().base->reordered());
    ExpectMergedQueriesMatchLogical(*index.value(), name + "/after-compact");

    // And a second batch over the folded base exercises translation against
    // a base whose row count now exceeds the stored order.
    UpdateBatch b2;
    b2.inserts = {kC - 1, 2};
    b2.updates = {{0, 0, 5}, {302, 0, 3}};
    b2.deletes = {4};
    ASSERT_TRUE(index.value()->ApplyBatch(b2).ok());
    ExpectMergedQueriesMatchLogical(*index.value(), name + "/second-batch");
  }
}

TEST(ReorderWritableTest, CheckpointReopenKeepsThePermutation) {
  constexpr uint32_t kC = 8;
  Column column = GenerateZipfColumn(
      {.rows = 250, .cardinality = kC, .zipf_z = 1.5, .seed = 47});
  IndexConfig config;
  config.codec = StorageCodec::kBbc;
  config.reorder = ReorderStrategy::kGrayCode;
  const std::string dir = FreshDir("reorder_reopen");
  std::vector<uint32_t> order;
  {
    auto created = WritableBitmapIndex::Create(dir, column, config);
    ASSERT_TRUE(created.ok());
    order = created.value()->Snapshot().base->row_order();
    ASSERT_FALSE(order.empty());
    UpdateBatch b;
    b.inserts = {1, 7};
    b.updates = {{10, 0, 3}};
    ASSERT_TRUE(created.value()->ApplyBatch(b).ok());
  }
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->Snapshot().base->row_order(), order);
  ExpectMergedQueriesMatchLogical(*reopened.value(), "reopened");
}

// --- Serving layer ------------------------------------------------------

TEST(ReorderServiceTest, ServedQueriesReturnOriginalRids) {
  Column col = AdversarialZipf(2000, 16, 61);
  IndexConfig config;
  config.codec = StorageCodec::kAuto;
  config.reorder = ReorderStrategy::kHistogram;
  Result<BitmapIndex> built = BuildIndex(col, config);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value().reordered());
  ServiceOptions options;
  options.num_workers = 2;
  auto service = Serve(&built.value(), options);
  ASSERT_TRUE(service.ok());
  ServiceQuery q;
  q.kind = ServiceQuery::Kind::kInterval;
  q.interval = {3, 11};
  QueryResult result = service.value()->Submit(q).get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, NaiveEvaluateInterval(col, {3, 11}));
  ServiceQuery count = q;
  count.count_only = true;
  QueryResult count_result = service.value()->Submit(count).get();
  ASSERT_TRUE(count_result.status.ok());
  EXPECT_EQ(count_result.count, result.rows.Count());
}

// --- Space: reordering only ever helps on clustered inputs -------------

TEST(ReorderSpaceTest, CompressedSizesAreMonotoneOnClusteredZipf) {
  // The iid Zipf draw is the unclustered baseline; every strategy clusters
  // equal values into contiguous blocks, so each run-length codec must
  // compress at least as well — this is the size gate CI enforces on the
  // benchmark corpus, held here as a property over strategies x codecs.
  const Column col = GenerateZipfColumn(
      {.rows = 6000, .cardinality = 40, .zipf_z = 1.2, .seed = 77});
  for (EncodingKind encoding :
       {EncodingKind::kEquality, EncodingKind::kInterval}) {
    for (StorageCodec codec :
         {StorageCodec::kBbc, StorageCodec::kWah, StorageCodec::kRoaring}) {
      IndexConfig base_config;
      base_config.encoding = encoding;
      base_config.codec = codec;
      Result<BitmapIndex> plain = BuildIndex(col, base_config);
      ASSERT_TRUE(plain.ok());
      const uint64_t plain_bytes = plain.value().TotalStoredBytes();
      for (ReorderStrategy strategy : AllReorderStrategies()) {
        IndexConfig config = base_config;
        config.reorder = strategy;
        Result<BitmapIndex> reordered = BuildIndex(col, config);
        ASSERT_TRUE(reordered.ok());
        EXPECT_LE(reordered.value().TotalStoredBytes(), plain_bytes)
            << EncodingKindName(encoding) << "/" << StorageCodecName(codec)
            << "/" << ReorderStrategyName(strategy);
      }
    }
  }
}

}  // namespace
}  // namespace bix
