// Tests for the service's time-and-overload model (DESIGN.md section 11):
// deadline propagation from admission through evaluation, cooperative
// cancellation of queued and running queries, queue-side shedding, and the
// adaptive brownout breaker. Service-level cases run on a VirtualClock
// wherever the behaviour under test is time-driven, so the suite is
// deterministic — no sleeps racing real schedulers. CI also builds this
// test with -DBIX_SANITIZE=thread and address,undefined.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/bitmap_index_facade.h"
#include "server/brownout.h"
#include "server/query_service.h"
#include "server/work_queue.h"
#include "storage/fault_injector.h"
#include "util/backoff.h"
#include "util/cancel_token.h"
#include "util/clock.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

using TimePoint = ClockInterface::TimePoint;

std::chrono::steady_clock::duration Seconds(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

// ---------------------------------------------------------------- queue --

TEST(BoundedWorkQueueDeadlineTest, PushUntilAdmitsWhenSpaceEvenIfExpired) {
  BoundedWorkQueue<int> q(2);
  // An already-past deadline refuses to *wait*, not to admit: expiry is
  // handled at dequeue (the shedding point), so the entry must flow there.
  const auto past = std::chrono::steady_clock::now() - Seconds(1.0);
  EXPECT_EQ(q.PushUntil(1, past), BoundedWorkQueue<int>::PushOutcome::kAccepted);
  EXPECT_EQ(q.PushUntil(2, past), BoundedWorkQueue<int>::PushOutcome::kAccepted);
  // Full queue + expired deadline: times out immediately instead of
  // parking the producer.
  EXPECT_EQ(q.PushUntil(3, past), BoundedWorkQueue<int>::PushOutcome::kTimedOut);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedWorkQueueDeadlineTest, PushUntilTimesOutOnFullQueue) {
  BoundedWorkQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PushUntil(2, t0 + Seconds(20e-3)),
            BoundedWorkQueue<int>::PushOutcome::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, Seconds(15e-3));
  q.Close();
  EXPECT_EQ(q.PushUntil(3, std::chrono::steady_clock::now() + Seconds(1.0)),
            BoundedWorkQueue<int>::PushOutcome::kClosed);
}

TEST(BoundedWorkQueueDeadlineTest, ShedLowestScoredRemovesSmallestFirst) {
  BoundedWorkQueue<int> q(8);
  for (int v : {40, 10, 30, 20, 50}) ASSERT_TRUE(q.TryPush(std::move(v)));
  std::vector<int> shed =
      q.ShedLowestScored(2, [](const int& v) { return static_cast<double>(v); });
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_TRUE((shed[0] == 10 && shed[1] == 20) ||
              (shed[0] == 20 && shed[1] == 10));
  // Survivors keep FIFO order.
  EXPECT_EQ(q.Pop().value(), 40);
  EXPECT_EQ(q.Pop().value(), 30);
  EXPECT_EQ(q.Pop().value(), 50);
  // Shedding more than is queued drains what exists.
  ASSERT_TRUE(q.TryPush(7));
  EXPECT_EQ(q.ShedLowestScored(10, [](const int&) { return 0.0; }).size(), 1u);
  EXPECT_EQ(q.ShedLowestScored(10, [](const int&) { return 0.0; }).size(), 0u);
}

// -------------------------------------------------------------- breaker --

TEST(BrownoutBreakerTest, FullCycleIsDeterministic) {
  BrownoutOptions opts;
  opts.window = 4;
  opts.min_samples = 2;
  opts.open_threshold = 0.5;
  opts.open_seconds = 1.0;
  opts.half_open_probes = 2;
  opts.degraded_retries = 0;
  BrownoutBreaker breaker(opts);
  const TimePoint t0{};

  EXPECT_EQ(breaker.state(), BrownoutBreaker::State::kClosed);
  EXPECT_EQ(breaker.EffectiveRetries(3), 3u);
  // One failure: below min_samples, stays closed.
  EXPECT_FALSE(breaker.RecordOutcome(true, t0));
  EXPECT_EQ(breaker.state(), BrownoutBreaker::State::kClosed);
  // Second failure: 2/2 >= 0.5 with min_samples met -> opens, and the
  // return value tells the caller to shed.
  EXPECT_TRUE(breaker.RecordOutcome(true, t0));
  EXPECT_EQ(breaker.state(), BrownoutBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_EQ(breaker.EffectiveRetries(3), 0u);  // brownout cuts the budget

  // Outcomes while open are ignored (draining pre-transition queries must
  // not extend the dwell).
  EXPECT_FALSE(breaker.RecordOutcome(true, t0 + Seconds(0.5)));
  EXPECT_EQ(breaker.Poll(t0 + Seconds(0.5)), BrownoutBreaker::State::kOpen);

  // Dwell elapses -> half-open; two probe successes -> closed again.
  EXPECT_EQ(breaker.Poll(t0 + Seconds(1.5)), BrownoutBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.RecordOutcome(false, t0 + Seconds(1.6)));
  EXPECT_FALSE(breaker.RecordOutcome(false, t0 + Seconds(1.7)));
  EXPECT_EQ(breaker.state(), BrownoutBreaker::State::kClosed);
  EXPECT_EQ(breaker.EffectiveRetries(3), 3u);
  EXPECT_NEAR(breaker.OpenSecondsTotal(t0 + Seconds(1.7)), 1.7, 1e-9);

  // The window was reset on close: two fresh failures reopen.
  EXPECT_FALSE(breaker.RecordOutcome(true, t0 + Seconds(2.0)));
  EXPECT_TRUE(breaker.RecordOutcome(true, t0 + Seconds(2.0)));
  EXPECT_EQ(breaker.opens(), 2u);
  // A half-open failure reopens with a fresh dwell.
  EXPECT_EQ(breaker.Poll(t0 + Seconds(3.5)), BrownoutBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.RecordOutcome(true, t0 + Seconds(3.5)));
  EXPECT_EQ(breaker.state(), BrownoutBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 3u);
}

// -------------------------------------------------------------- service --

class ServiceDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ColumnSpec spec;
    spec.rows = 5000;
    spec.cardinality = 40;
    spec.zipf_z = 1.0;
    column_ = GenerateZipfColumn(spec);
    IndexConfig config;
    // Equality encoding: an interval query [lo, hi] fetches one bitmap per
    // value in the interval, giving tests a precise fetch count to reason
    // about.
    config.encoding = EncodingKind::kEquality;
    index_.emplace(BuildIndex(column_, config).value());
  }

  // One worker + injected clock: a fully serialized, deterministic
  // timeline.
  ServiceOptions DeterministicService(ClockInterface* clock) const {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = 64;
    options.cache_shards = 2;
    options.clock = clock;
    return options;
  }

  Column column_;
  std::optional<BitmapIndex> index_;
};

TEST_F(ServiceDeadlineTest, ExpiredDeadlineIsShedAtDequeueWithoutExecuting) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  ServiceQuery q = ServiceQuery::Interval(IntervalQuery{3, 3, false});
  q.WithCancel(CancelToken::WithDeadline(clock.Now() - Seconds(1e-3)));
  QueryResult r = service.Submit(std::move(q)).get();
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.shed_in_queue, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 0u);  // never executed
  EXPECT_EQ(stats.io.scans, 0u);   // no storage work was done
}

TEST_F(ServiceDeadlineTest, CancelledWhileQueuedResolvesCancelled) {
  VirtualClock clock;
  QueryService service(&*index_, DeterministicService(&clock));

  auto token = CancelToken::Manual();
  token->Cancel();  // raised before a worker ever sees the query
  QueryResult r = service
                      .Submit(ServiceQuery::Interval(IntervalQuery{3, 3, false})
                                  .WithCancel(token))
                      .get();
  EXPECT_EQ(r.status.code(), Status::Code::kCancelled);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed_in_queue, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(ServiceDeadlineTest, CancelInterruptsRetryBackoff) {
  // Real clock: the point under test is that Cancel() wakes a worker
  // parked in an exponential-backoff sleep. The injector fails every
  // fetch, and the retry budget/backoff are sized so the query would
  // otherwise grind for minutes.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 1'000'000;
  FaultInjector injector(fault_opts);

  ServiceOptions options = DeterministicService(nullptr);
  options.fault_injector = &injector;
  options.max_fetch_retries = 1'000'000;
  options.retry_backoff_seconds = 50e-3;
  options.brownout.enabled = false;  // keep the full retry budget in force
  QueryService service(&*index_, options);

  auto token = CancelToken::Manual();
  std::future<QueryResult> f = service.Submit(
      ServiceQuery::Interval(IntervalQuery{3, 3, false}).WithCancel(token));
  // Let the worker reach the retry loop, then cancel mid-backoff.
  ASSERT_EQ(f.wait_for(std::chrono::milliseconds(60)),
            std::future_status::timeout);
  const auto t0 = std::chrono::steady_clock::now();
  token->Cancel();
  ASSERT_EQ(f.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  // Resolution is prompt: the sleep was interrupted, not waited out (the
  // backoff had already doubled past this bound).
  EXPECT_LT(std::chrono::steady_clock::now() - t0, Seconds(5.0));
  QueryResult r = f.get();
  EXPECT_EQ(r.status.code(), Status::Code::kCancelled);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);  // it ran; it resolved typed
  EXPECT_EQ(stats.degraded_queries, 1u);
}

TEST_F(ServiceDeadlineTest, MidEvalDeadlineKeepsPartialMetrics) {
  // VirtualClock + modeled I/O latency: every cache miss advances
  // simulated time by >= seek_seconds (10ms). A 15ms budget admits the
  // query, survives the first fetch, and expires before the interval's
  // remaining bitmaps — deterministically, with zero real sleeping.
  VirtualClock clock;
  ServiceOptions options = DeterministicService(&clock);
  options.io_latency_scale = 1.0;
  QueryService service(&*index_, options);

  const IntervalQuery interval{0, 5, false};  // 6 equality bitmaps
  ServiceQuery q = ServiceQuery::Interval(interval);
  q.WithCancel(CancelToken::WithDeadline(clock.Now() + Seconds(15e-3)));
  QueryResult r = service.Submit(std::move(q)).get();
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded);
  // Partial work is preserved in the metrics: at least one fetch ran
  // before the budget expired, and not all six did.
  EXPECT_GE(r.metrics.io.scans, 1u);
  EXPECT_LT(r.metrics.io.scans, 6u);

  // The same query without a deadline completes and does strictly more
  // storage work.
  QueryResult clean = service.Submit(ServiceQuery::Interval(interval)).get();
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_EQ(clean.metrics.io.scans, 6u);
  EXPECT_GT(clean.metrics.io.scans, r.metrics.io.scans);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.degraded_queries, 1u);
}

TEST_F(ServiceDeadlineTest, AdmissionDeadlineBoundsBlockingSubmit) {
  // Real clock; capacity-1 queue. q1 occupies the worker (failing fetches
  // with long backoff), q2 fills the queue, so q3's blocking Submit can
  // only wait — and its deadline caps that wait.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 1'000'000;
  FaultInjector injector(fault_opts);

  ServiceOptions options = DeterministicService(nullptr);
  options.queue_capacity = 1;
  options.fault_injector = &injector;
  options.max_fetch_retries = 1'000'000;
  options.retry_backoff_seconds = 50e-3;
  options.brownout.enabled = false;
  QueryService service(&*index_, options);

  auto running = CancelToken::Manual();
  std::future<QueryResult> f1 = service.Submit(
      ServiceQuery::Interval(IntervalQuery{3, 3, false}).WithCancel(running));
  // Wait until the worker has picked up q1 (the queue slot frees), then
  // fill the queue with q2.
  auto queued = CancelToken::Manual();
  std::future<QueryResult> f2;
  for (;;) {
    std::future<QueryResult> f = service.TrySubmit(
        ServiceQuery::Interval(IntervalQuery{4, 4, false}).WithCancel(queued));
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      f2 = std::move(f);  // admitted: sits in the queue behind busy q1
      break;
    }
    QueryResult rejected = f.get();  // queue still held q1; retry
    ASSERT_EQ(rejected.status.code(), Status::Code::kUnavailable);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ServiceQuery q3 = ServiceQuery::Interval(IntervalQuery{5, 5, false});
  q3.WithTimeout(30e-3);
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult r3 = service.Submit(std::move(q3)).get();
  EXPECT_EQ(r3.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, Seconds(25e-3));

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.shed_in_queue, 0u);  // rejected at admission, not dequeue

  // Unwind: cancel both in-flight queries and let Shutdown drain.
  running->Cancel();
  queued->Cancel();
  EXPECT_EQ(f1.get().status.code(), Status::Code::kCancelled);
  EXPECT_EQ(f2.get().status.code(), Status::Code::kCancelled);
}

TEST_F(ServiceDeadlineTest, BreakerCycleIsDeterministicUnderInjectedFaults) {
  // Single worker, VirtualClock, deterministic injector: the first 8 read
  // attempts of the hot bitmap fail, later ones succeed. With
  // min_samples = 8 and threshold 1.0, the 8th failed query opens the
  // breaker on the nose.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 8;
  FaultInjector injector(fault_opts);

  VirtualClock clock;
  ServiceOptions options = DeterministicService(&clock);
  options.fault_injector = &injector;
  options.max_fetch_retries = 0;  // one attempt per query: exact counts
  options.brownout.window = 8;
  options.brownout.min_samples = 8;
  options.brownout.open_threshold = 1.0;
  options.brownout.open_seconds = 1.0;
  options.brownout.half_open_probes = 2;
  options.brownout.shed_fraction = 0.0;  // isolate the state machine
  QueryService service(&*index_, options);

  const ServiceQuery q = ServiceQuery::Interval(IntervalQuery{3, 3, false});
  for (int i = 0; i < 8; ++i) {
    QueryResult r = service.Submit(q).get();
    EXPECT_EQ(r.status.code(), Status::Code::kUnavailable) << "query " << i;
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_state, 1u);  // open

  // Brownout, not blackout: the open breaker still serves queries (the
  // 9th read attempt succeeds), it just cuts the retry budget.
  QueryResult served = service.Submit(q).get();
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  EXPECT_EQ(service.Stats().breaker_state, 1u);  // dwell not yet elapsed

  // Past the dwell the next completions probe half-open and close it.
  clock.Advance(2.0);
  ASSERT_TRUE(service.Submit(q).get().status.ok());
  ASSERT_TRUE(service.Submit(q).get().status.ok());
  stats = service.Stats();
  EXPECT_EQ(stats.breaker_state, 0u);  // closed again
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_GE(stats.breaker_open_seconds, 1.0);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.shed_in_queue, 0u);
}

TEST_F(ServiceDeadlineTest, BreakerOpeningShedsQueuedBacklog) {
  // Real clock: each failing query burns ~150ms of backoff (2 retries at
  // 50ms doubling), so a burst of 20 keeps a deep backlog while the first
  // four failures open the breaker — which must shed the whole queue
  // (shed_fraction = 1.0) as immediate Unavailable results.
  FaultInjectorOptions fault_opts;
  fault_opts.unavailable_first_attempts = 1'000'000;
  FaultInjector injector(fault_opts);

  ServiceOptions options = DeterministicService(nullptr);
  options.fault_injector = &injector;
  options.max_fetch_retries = 2;
  options.retry_backoff_seconds = 50e-3;
  options.brownout.window = 4;
  options.brownout.min_samples = 4;
  options.brownout.open_threshold = 1.0;
  options.brownout.open_seconds = 60.0;  // stays open for the whole test
  options.brownout.degraded_retries = 0;
  options.brownout.shed_fraction = 1.0;
  QueryService service(&*index_, options);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        service.Submit(ServiceQuery::Interval(IntervalQuery{3, 3, false})));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(f.get().status.code(), Status::Code::kUnavailable);
  }
  ServiceStats stats = service.Stats();
  EXPECT_GE(stats.breaker_opens, 1u);
  EXPECT_GT(stats.shed_in_queue, 0u);  // the backlog did not drain by running
  EXPECT_GT(stats.breaker_open_seconds, 0.0);
  // Shed queries never executed, so completed + shed covers the burst.
  EXPECT_EQ(stats.completed + stats.shed_in_queue, 20u);
  // After the breaker opened, executed queries used the degraded retry
  // budget: strictly fewer than 20 * 2 retries were burned.
  EXPECT_LT(stats.retries, 40u);
}

// --------------------------------------------------- jittered backoff --

// The decorrelated-jitter schedule (DESIGN.md section 11) is a pure
// function of (seed, stream, sleep_index): replaying the same inputs pins
// the exact sleep sequence, every draw respects the [base, max(base,
// 3*prev)) envelope and the cap, and distinct streams/seeds decorrelate.
TEST(JitterBackoffTest, ScheduleIsPureBoundedAndDecorrelated) {
  constexpr double kBase = 100e-6;
  constexpr double kCap = 0.0;  // uncapped
  auto sequence = [&](uint64_t seed, uint64_t stream, double cap) {
    std::vector<double> sleeps;
    double prev = kBase;
    for (uint64_t i = 1; i <= 8; ++i) {
      prev = DecorrelatedJitterBackoff(seed, stream, i, kBase, prev, cap);
      sleeps.push_back(prev);
    }
    return sleeps;
  };

  const std::vector<double> a = sequence(42, 7, kCap);
  const std::vector<double> replay = sequence(42, 7, kCap);
  EXPECT_EQ(a, replay) << "same inputs must replay the exact sequence";

  double prev = kBase;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], kBase) << "sleep " << i << " under base";
    EXPECT_LT(a[i], std::max(kBase, 3.0 * prev)) << "sleep " << i;
    prev = a[i];
  }

  // Two retry loops over the same key but different streams must not march
  // in phase — that is the whole point of decorrelation.
  EXPECT_NE(a, sequence(42, 8, kCap));
  EXPECT_NE(a, sequence(43, 7, kCap));

  // The cap clamps every draw.
  for (double s : sequence(42, 7, 2.0 * kBase)) {
    EXPECT_LE(s, 2.0 * kBase);
  }
}

// Service-level determinism: with a fixed retry_jitter_seed, the virtual
// time a retrying query sleeps is exactly reproducible run to run, stays
// inside the jitter envelope, and differs from the legacy doubling
// schedule (which seed = 0 preserves bit-for-bit).
TEST_F(ServiceDeadlineTest, JitterSeedPinsRetrySleepsUnderVirtualClock) {
  constexpr double kBase = 100e-6;
  // One failing fetch, three retries: the worker sleeps before each retry.
  auto run = [&](uint64_t jitter_seed) {
    VirtualClock clock;
    FaultInjectorOptions fault_opts;
    fault_opts.unavailable_first_attempts = 1'000'000;
    FaultInjector injector(fault_opts);
    ServiceOptions options = DeterministicService(&clock);
    options.fault_injector = &injector;
    options.max_fetch_retries = 3;
    options.retry_backoff_seconds = kBase;
    options.retry_jitter_seed = jitter_seed;
    options.brownout.enabled = false;
    QueryService service(&*index_, options);
    QueryResult r =
        service.Submit(ServiceQuery::Interval(IntervalQuery{3, 3, false}))
            .get();
    EXPECT_EQ(r.status.code(), Status::Code::kUnavailable);
    return clock.slept_seconds();
  };

  // Legacy exponential doubling: base + 2*base + 4*base, exactly.
  EXPECT_DOUBLE_EQ(run(0), 7.0 * kBase);

  const double jittered = run(1999);
  EXPECT_DOUBLE_EQ(run(1999), jittered) << "fixed seed must replay exactly";
  // First sleep stays base; draws 2 and 3 land in [base, 3*prev): total in
  // [3*base, base + 3*base + 9*base).
  EXPECT_GE(jittered, 3.0 * kBase);
  EXPECT_LT(jittered, 13.0 * kBase);
  EXPECT_NE(jittered, 7.0 * kBase) << "seeded schedule should not mimic "
                                      "the legacy doubling sequence";
  // A different seed gives a different (still pinned) schedule.
  EXPECT_NE(run(2000), jittered);

  // The cap bounds every jittered sleep: with cap == base the whole
  // schedule collapses to base per sleep, deterministically.
  {
    VirtualClock clock;
    FaultInjectorOptions fault_opts;
    fault_opts.unavailable_first_attempts = 1'000'000;
    FaultInjector injector(fault_opts);
    ServiceOptions options = DeterministicService(&clock);
    options.fault_injector = &injector;
    options.max_fetch_retries = 3;
    options.retry_backoff_seconds = kBase;
    options.retry_jitter_seed = 1999;
    options.retry_backoff_max_seconds = kBase;
    options.brownout.enabled = false;
    QueryService service(&*index_, options);
    QueryResult r =
        service.Submit(ServiceQuery::Interval(IntervalQuery{3, 3, false}))
            .get();
    EXPECT_EQ(r.status.code(), Status::Code::kUnavailable);
    EXPECT_DOUBLE_EQ(clock.slept_seconds(), 3.0 * kBase);
  }
}

}  // namespace
}  // namespace bix
