// Differential fuzz test for the expression builders: random operator
// trees are built twice — once through the simplifying builders
// (ExprAnd/ExprOr/ExprXor/ExprNot, which flatten, fold constants and
// cancel duplicates) and once evaluated directly from the recipe — and the
// results must agree bit for bit. This pins the algebraic rewrites the
// scan-count accounting relies on.

#include <gtest/gtest.h>

#include "expr/evaluate.h"
#include "util/rng.h"

namespace bix {
namespace {

constexpr uint64_t kRows = 257;  // deliberately not word-aligned
constexpr uint32_t kLeaves = 5;

struct Env {
  std::vector<Bitvector> bitmaps;

  explicit Env(uint64_t seed) {
    Rng rng(seed);
    for (uint32_t s = 0; s < kLeaves; ++s) {
      Bitvector bv(kRows);
      for (uint64_t i = 0; i < kRows; ++i) {
        if (rng.Bernoulli(0.4)) bv.Set(i);
      }
      bitmaps.push_back(std::move(bv));
    }
  }
};

// Builds a random expression via the builders while computing its
// reference value directly.
struct Built {
  ExprPtr expr;
  Bitvector value;
};

Built BuildRandom(const Env& env, Rng* rng, int depth) {
  const uint64_t choice = rng->UniformInt(0, depth <= 0 ? 1 : 5);
  switch (choice) {
    case 0: {  // leaf
      const uint32_t s = static_cast<uint32_t>(rng->UniformInt(0, kLeaves - 1));
      return {ExprLeaf(1, s), env.bitmaps[s]};
    }
    case 1: {  // constant
      const bool v = rng->Bernoulli(0.5);
      return {ExprConst(v),
              v ? Bitvector::AllOnes(kRows) : Bitvector(kRows)};
    }
    case 2: {  // NOT
      Built child = BuildRandom(env, rng, depth - 1);
      child.value.NotSelf();
      return {ExprNot(std::move(child.expr)), std::move(child.value)};
    }
    default: {  // AND / OR / XOR with 2-4 children
      const uint64_t arity = rng->UniformInt(2, 4);
      std::vector<ExprPtr> children;
      std::vector<Bitvector> values;
      for (uint64_t i = 0; i < arity; ++i) {
        Built child = BuildRandom(env, rng, depth - 1);
        children.push_back(std::move(child.expr));
        values.push_back(std::move(child.value));
      }
      Bitvector acc = values[0];
      ExprPtr e;
      if (choice == 3) {
        for (size_t i = 1; i < values.size(); ++i) acc.AndWith(values[i]);
        e = ExprAnd(std::move(children));
      } else if (choice == 4) {
        for (size_t i = 1; i < values.size(); ++i) acc.OrWith(values[i]);
        e = ExprOr(std::move(children));
      } else {
        for (size_t i = 1; i < values.size(); ++i) acc.XorWith(values[i]);
        e = ExprXor(std::move(children));
      }
      return {std::move(e), std::move(acc)};
    }
  }
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzz, BuilderSimplificationsPreserveSemantics) {
  Env env(GetParam());
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 200; ++trial) {
    Built b = BuildRandom(env, &rng, 4);
    Bitvector evaluated = EvaluateExpr(
        b.expr, kRows, [&env](BitmapKey key) { return env.bitmaps[key.slot]; });
    ASSERT_EQ(evaluated, b.value)
        << "seed=" << GetParam() << " trial=" << trial << " expr "
        << ExprToString(b.expr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ExprFuzzDeep, DeepXorChainsKeepParity) {
  // XOR of an odd number of copies of the same leaf reduces to the leaf;
  // an even number reduces to constant false — check through deep chains.
  ExprPtr leaf = ExprLeaf(1, 0);
  ExprPtr acc = leaf;
  Env env(99);
  for (int i = 2; i <= 40; ++i) {
    acc = ExprXor(std::move(acc), leaf);
    Bitvector v = EvaluateExpr(
        acc, kRows, [&env](BitmapKey key) { return env.bitmaps[key.slot]; });
    if (i % 2 == 0) {
      EXPECT_EQ(v.Count(), 0u) << i;
    } else {
      EXPECT_EQ(v, env.bitmaps[0]) << i;
    }
  }
}

}  // namespace
}  // namespace bix
