// Crash-recovery tests for the writable index (DESIGN.md section 15):
// a deterministic crash-point sweep that kills the WAL at every byte
// offset, checkpoint commits interrupted by injected rename/flush/truncate
// failures, torn-tail repair, and replay idempotence — each recovery
// asserted bit-identical to a from-scratch rebuild of the logical column.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/writable_index.h"
#include "index/reorder.h"
#include "query/executor.h"
#include "workload/column_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                    size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(n));
}

// End offset of every complete record in a WAL image (frame = len|crc|body).
std::vector<size_t> RecordBoundaries(const std::vector<uint8_t>& wal) {
  std::vector<size_t> ends;
  size_t off = 0;
  while (off + 8 <= wal.size()) {
    uint32_t len = 0;
    for (int i = 3; i >= 0; --i) len = (len << 8) | wal[off + i];
    if (wal.size() - off - 8 < len) break;
    off += 8 + len;
    ends.push_back(off);
  }
  return ends;
}

// Reference interpreter for batch semantics: the state a rebuilt index
// would serve. Mirrors DeltaSnapshot::Apply (inserts, updates, deletes, in
// that order; an update revives a tombstoned row).
struct LogicalOracle {
  std::vector<uint32_t> values;
  std::vector<bool> live;

  explicit LogicalOracle(const Column& column)
      : values(column.values), live(column.values.size(), true) {}

  void Apply(const UpdateBatch& batch) {
    for (uint32_t v : batch.inserts) {
      values.push_back(v);
      live.push_back(true);
    }
    for (const UpdateRecord& u : batch.updates) {
      values[u.rid] = u.value;
      live[u.rid] = true;
    }
    for (uint64_t rid : batch.deletes) live[rid] = false;
  }

  Bitvector LiveMask() const {
    Bitvector mask(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i]) mask.Set(i);
    }
    return mask;
  }
};

void ExpectStateMatchesOracle(const WritableBitmapIndex& index,
                              const LogicalOracle& oracle,
                              const std::string& context) {
  EXPECT_EQ(index.LogicalValues(), oracle.values) << context;
  EXPECT_EQ(index.LiveMask(), oracle.LiveMask()) << context;
}

// The two batches every crash test replays: inserts + updates + deletes
// touching base rows, appended rows, and a delete-then-revive pair.
UpdateBatch BatchOne(uint32_t cardinality) {
  UpdateBatch b;
  b.inserts = {1 % cardinality, 3 % cardinality, 0, 2 % cardinality};
  b.updates = {{2, 0, cardinality - 1}, {5, 0, 1 % cardinality}};
  b.deletes = {7, 11};
  return b;
}

UpdateBatch BatchTwo(uint64_t rows_after_one, uint32_t cardinality) {
  UpdateBatch b;
  b.inserts = {cardinality - 1, 1 % cardinality};
  // Revive row 7 (deleted by batch one) and rewrite an appended row.
  b.updates = {{7, 0, 2 % cardinality}, {rows_after_one - 1, 0, 0}};
  b.deletes = {3, rows_after_one - 2};
  return b;
}

struct SweepParam {
  EncodingKind encoding;
  std::vector<uint32_t> bases;
};

class CrashPointSweep : public ::testing::TestWithParam<SweepParam> {};

// Kill the write path at every byte offset of the WAL: recovery must land
// on exactly the batches whose records are fully contained in the prefix —
// the pre-batch state or the post-batch state, never anything in between.
TEST_P(CrashPointSweep, EveryByteOffsetRecoversToABatchBoundary) {
  const SweepParam& p = GetParam();
  constexpr uint32_t kC = 6;
  Column column = GenerateZipfColumn(
      {.rows = 40, .cardinality = kC, .zipf_z = 0.8, .seed = 11});

  const std::string src = FreshDir("sweep_src");
  IndexConfig config;
  config.encoding = p.encoding;
  config.bases_msb_first = p.bases;
  config.codec = StorageCodec::kAuto;
  {
    auto created = WritableBitmapIndex::Create(src, column, config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ASSERT_TRUE(created.value()->ApplyBatch(BatchOne(kC)).ok());
    ASSERT_TRUE(
        created.value()->ApplyBatch(BatchTwo(column.row_count() + 4, kC)).ok());
    // Destructor closes the WAL file handle before the sweep copies it.
  }

  const std::vector<uint8_t> wal = ReadFileBytes(src + "/wal.log");
  const std::vector<size_t> boundaries = RecordBoundaries(wal);
  ASSERT_EQ(boundaries.size(), 2u);
  ASSERT_EQ(boundaries.back(), wal.size());

  std::vector<LogicalOracle> oracle_at;  // state after k recovered batches
  oracle_at.emplace_back(column);
  oracle_at.emplace_back(column);
  oracle_at.back().Apply(BatchOne(kC));
  oracle_at.emplace_back(oracle_at.back());
  oracle_at.back().Apply(BatchTwo(column.row_count() + 4, kC));

  const std::string dst = FreshDir("sweep_dst");
  for (const auto& entry : fs::directory_iterator(src)) {
    if (entry.path().filename() != "wal.log") {
      fs::copy_file(entry.path(), dst + "/" + entry.path().filename().string());
    }
  }
  for (size_t cut = 0; cut <= wal.size(); ++cut) {
    WriteFileBytes(dst + "/wal.log", wal, cut);
    auto reopened = WritableBitmapIndex::Open(dst);
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();
    size_t batches = 0;
    while (batches < boundaries.size() && boundaries[batches] <= cut) {
      ++batches;
    }
    const bool at_boundary =
        cut == 0 || (batches > 0 && boundaries[batches - 1] == cut);
    const RecoveryInfo info = reopened.value()->recovery_info();
    EXPECT_EQ(info.recovered_batches, batches) << "cut=" << cut;
    EXPECT_EQ(info.truncated_tail_records, at_boundary ? 0u : 1u)
        << "cut=" << cut;
    ExpectStateMatchesOracle(*reopened.value(), oracle_at[batches],
                             "cut=" + std::to_string(cut));
  }
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (EncodingKind enc : AllEncodingKinds()) params.push_back({enc, {6}});
  params.push_back({EncodingKind::kInterval, {3, 2}});
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, CrashPointSweep, ::testing::ValuesIn(SweepParams()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = EncodingKindName(info.param.encoding);
      if (name == "EI*") name = "EIstar";
      return name + "_" + std::to_string(info.param.bases.size()) + "comp";
    });

struct CodecParam {
  EncodingKind encoding;
  StorageCodec codec;
};

class RecoveryCodecMatrix : public ::testing::TestWithParam<CodecParam> {};

// Reopen + compact for every encoding x storage codec: recovered queries
// and the folded store must be bit-identical to an index rebuilt from the
// updated logical column (tombstoned rows keep their last value in both).
TEST_P(RecoveryCodecMatrix, RecoverCompactMatchesRebuild) {
  const CodecParam& p = GetParam();
  constexpr uint32_t kC = 8;
  Column column = GenerateZipfColumn(
      {.rows = 300, .cardinality = kC, .zipf_z = 1.0, .seed = 17});

  const std::string dir = FreshDir("codec_matrix");
  IndexConfig config;
  config.encoding = p.encoding;
  config.codec = p.codec;
  LogicalOracle oracle(column);
  {
    auto created = WritableBitmapIndex::Create(dir, column, config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    UpdateBatch one = BatchOne(kC);
    UpdateBatch two = BatchTwo(column.row_count() + 4, kC);
    ASSERT_TRUE(created.value()->ApplyBatch(one).ok());
    ASSERT_TRUE(created.value()->ApplyBatch(two).ok());
    oracle.Apply(one);
    oracle.Apply(two);
  }

  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  WritableBitmapIndex& index = *reopened.value();
  EXPECT_EQ(index.recovery_info().recovered_batches, 2u);
  ExpectStateMatchesOracle(index, oracle, "after reopen");

  ASSERT_TRUE(index.Compact(nullptr).ok());
  EXPECT_EQ(index.PendingDeltaOps(), 0u);
  ExpectStateMatchesOracle(index, oracle, "after compact");

  // Folded base == bulk rebuild of the logical column, bitmap for bitmap.
  Column logical;
  logical.cardinality = kC;
  logical.values = index.LogicalValues();
  Result<BitmapIndex> rebuilt = BuildIndex(logical, config);
  ASSERT_TRUE(rebuilt.ok());
  const BitmapIndex& base = *index.Snapshot().base;
  const Decomposition& d = base.decomposition();
  ASSERT_EQ(base.row_count(), rebuilt.value().row_count());
  for (uint32_t comp = 1; comp <= d.num_components(); ++comp) {
    const uint32_t slots = GetEncoding(p.encoding).NumBitmaps(d.base(comp));
    for (uint32_t s = 0; s < slots; ++s) {
      EXPECT_EQ(base.store().Materialize({comp, s}),
                rebuilt.value().store().Materialize({comp, s}))
          << "comp=" << comp << " slot=" << s;
    }
  }

  // Query equivalence end to end, through the writable serving path.
  ServiceOptions sopts;
  sopts.num_workers = 2;
  auto service = Serve(&index, sopts);
  ASSERT_TRUE(service.ok());
  const Bitvector live = index.LiveMask();
  for (uint32_t lo = 0; lo < kC; ++lo) {
    for (uint32_t hi = lo; hi < kC; ++hi) {
      Bitvector expected = NaiveEvaluateInterval(logical, {lo, hi});
      expected.AndWith(live);
      QueryResult got = service.value()
                            ->Submit(ServiceQuery::Interval({lo, hi}))
                            .get();
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      EXPECT_EQ(got.rows, expected) << "[" << lo << "," << hi << "]";
    }
  }
  service.value()->Shutdown();
}

std::vector<CodecParam> CodecParams() {
  std::vector<CodecParam> params;
  const StorageCodec codecs[] = {StorageCodec::kVerbatim, StorageCodec::kBbc,
                                 StorageCodec::kWah, StorageCodec::kRoaring,
                                 StorageCodec::kAuto};
  for (EncodingKind enc : AllEncodingKinds()) {
    for (StorageCodec codec : codecs) params.push_back({enc, codec});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecoveryCodecMatrix, ::testing::ValuesIn(CodecParams()),
    [](const ::testing::TestParamInfo<CodecParam>& info) {
      std::string name = EncodingKindName(info.param.encoding);
      if (name == "EI*") name = "EIstar";
      switch (info.param.codec) {
        case StorageCodec::kVerbatim: name += "_verbatim"; break;
        case StorageCodec::kBbc: name += "_bbc"; break;
        case StorageCodec::kWah: name += "_wah"; break;
        case StorageCodec::kRoaring: name += "_roaring"; break;
        case StorageCodec::kAuto: name += "_auto"; break;
      }
      return name;
    });

// --- Reordered base + delta recovery (DESIGN.md section 18) ------------

// Merged interval results over {reordered base + recovered overlay},
// checked in *original* RID space against the oracle's logical column.
// ExpectStateMatchesOracle only covers the sidecar state; this one proves
// the recovered bitmaps answer through the permutation correctly.
void ExpectQueriesMatchOracle(const WritableBitmapIndex& index,
                              const LogicalOracle& oracle,
                              const std::string& context) {
  const IndexSnapshot snap = index.Snapshot();
  Column logical;
  logical.cardinality = index.cardinality();
  logical.values = oracle.values;
  const Bitvector live = oracle.LiveMask();
  QueryExecutor exec(snap.base.get(), {});
  const uint32_t c = logical.cardinality;
  for (const IntervalQuery q :
       {IntervalQuery{0, c - 1}, IntervalQuery{1, c / 2},
        IntervalQuery{c - 2, c - 1}}) {
    std::vector<ExprPtr> exprs;
    exprs.push_back(exec.Rewrite(q));
    Result<Bitvector> got = exec.TryEvaluateRewrittenMerged(
        exprs, snap.delta->View(), ValueSet::Interval(q.lo, q.hi));
    ASSERT_TRUE(got.ok()) << context;
    Bitvector expected = NaiveEvaluateInterval(logical, q);
    expected.AndWith(live);
    ASSERT_EQ(got.value(), expected)
        << context << " [" << q.lo << "," << q.hi << "]";
  }
}

class ReorderedRecoverySweep
    : public ::testing::TestWithParam<ReorderStrategy> {};

// The crash-point sweep over a *reordered* base: every WAL prefix must
// recover to a batch boundary whose merged query results come back in
// original RIDs — the overlay (WAL records, overrides, tombstones) is
// keyed by original RIDs while the recovered base's bitmaps are permuted,
// so any missed translation shows up as a wrong result here.
TEST_P(ReorderedRecoverySweep, EveryPrefixAnswersInOriginalRids) {
  const ReorderStrategy strategy = GetParam();
  constexpr uint32_t kC = 6;
  Column column = GenerateZipfColumn(
      {.rows = 40, .cardinality = kC, .zipf_z = 2.0, .seed = 29});

  const std::string src = FreshDir("reorder_sweep_src");
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  config.bases_msb_first = {3, 2};
  config.codec = StorageCodec::kBbc;
  config.reorder = strategy;
  {
    auto created = WritableBitmapIndex::Create(src, column, config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ASSERT_TRUE(created.value()->Snapshot().base->reordered());
    ASSERT_TRUE(created.value()->ApplyBatch(BatchOne(kC)).ok());
    ASSERT_TRUE(
        created.value()->ApplyBatch(BatchTwo(column.row_count() + 4, kC)).ok());
  }

  const std::vector<uint8_t> wal = ReadFileBytes(src + "/wal.log");
  const std::vector<size_t> boundaries = RecordBoundaries(wal);
  ASSERT_EQ(boundaries.size(), 2u);

  std::vector<LogicalOracle> oracle_at;
  oracle_at.emplace_back(column);
  oracle_at.emplace_back(column);
  oracle_at.back().Apply(BatchOne(kC));
  oracle_at.emplace_back(oracle_at.back());
  oracle_at.back().Apply(BatchTwo(column.row_count() + 4, kC));

  const std::string dst = FreshDir("reorder_sweep_dst");
  for (const auto& entry : fs::directory_iterator(src)) {
    if (entry.path().filename() != "wal.log") {
      fs::copy_file(entry.path(), dst + "/" + entry.path().filename().string());
    }
  }
  // Batch boundaries plus a mid-record cut on either side of each.
  std::vector<size_t> cuts = {0, wal.size() / 4};
  for (size_t b : boundaries) {
    cuts.push_back(b - 3);
    cuts.push_back(b);
  }
  for (size_t cut : cuts) {
    WriteFileBytes(dst + "/wal.log", wal, cut);
    auto reopened = WritableBitmapIndex::Open(dst);
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();
    EXPECT_TRUE(reopened.value()->Snapshot().base->reordered());
    size_t batches = 0;
    while (batches < boundaries.size() && boundaries[batches] <= cut) {
      ++batches;
    }
    const std::string context = "cut=" + std::to_string(cut);
    ExpectStateMatchesOracle(*reopened.value(), oracle_at[batches], context);
    ExpectQueriesMatchOracle(*reopened.value(), oracle_at[batches], context);
    // Fold the recovered overlay into the permuted base and re-check: the
    // compaction path translates override RIDs through the inverse order.
    ASSERT_TRUE(reopened.value()->Compact(nullptr).ok()) << context;
    EXPECT_TRUE(reopened.value()->Snapshot().base->reordered()) << context;
    ExpectQueriesMatchOracle(*reopened.value(), oracle_at[batches],
                             context + " compacted");
    // Leave dst pristine for the next cut (compaction rewrote files).
    fs::remove_all(dst);
    fs::create_directories(dst);
    for (const auto& entry : fs::directory_iterator(src)) {
      if (entry.path().filename() != "wal.log") {
        fs::copy_file(entry.path(),
                      dst + "/" + entry.path().filename().string());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ReorderedRecoverySweep,
    ::testing::ValuesIn(AllReorderStrategies()),
    [](const ::testing::TestParamInfo<ReorderStrategy>& info) {
      return std::string(ReorderStrategyName(info.param));
    });

Column SmallColumn() {
  return GenerateZipfColumn(
      {.rows = 120, .cardinality = 5, .zipf_z = 0.5, .seed = 23});
}

IndexConfig SmallConfig() {
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  return config;
}

// An injected WAL flush failure must leave the batch unapplied (the append
// is repaired away) and the call retryable; the retry succeeds and the
// final state matches the oracle.
TEST(RecoveryTest, FailedWalFsyncAppliesNothingAndIsRetryable) {
  const std::string dir = FreshDir("flush_fail");
  FaultInjector injector({.flush_fail_first_attempts = 1});
  Column column = SmallColumn();
  auto index =
      WritableBitmapIndex::Create(dir, column, SmallConfig(), {.injector = &injector});
  ASSERT_TRUE(index.ok());

  UpdateBatch batch = BatchOne(5);
  Status s = index.value()->ApplyBatch(batch);
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(index.value()->PendingDeltaOps(), 0u);

  ASSERT_TRUE(index.value()->ApplyBatch(batch).ok());
  LogicalOracle oracle(column);
  oracle.Apply(batch);
  ExpectStateMatchesOracle(*index.value(), oracle, "after retry");

  // The repaired-then-retried WAL replays exactly one batch.
  index.value().reset();
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 1u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "after reopen");
}

// Checkpoint commit interrupted by an injected rename failure: the first
// Compact fails without losing anything; the retry commits — and its
// injected WAL-truncate failure is tolerated because replay skips stale
// records by sequence number.
TEST(RecoveryTest, CheckpointRenameFailureThenStaleWalIsSkipped) {
  const std::string dir = FreshDir("rename_fail");
  Column column = SmallColumn();
  {
    auto created = WritableBitmapIndex::Create(dir, column, SmallConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  // Injector attached on reopen, so the initial checkpoint stays clean.
  FaultInjector injector({.rename_fail_first_attempts = 1});
  auto index = WritableBitmapIndex::Open(dir, {.injector = &injector});
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  UpdateBatch batch = BatchOne(5);
  ASSERT_TRUE(index.value()->ApplyBatch(batch).ok());
  LogicalOracle oracle(column);
  oracle.Apply(batch);

  // First attempt dies at the first checkpoint rename; nothing committed,
  // nothing lost.
  Status s = index.value()->Compact(nullptr);
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(index.value()->PendingDeltaOps(), batch.ops());
  ExpectStateMatchesOracle(*index.value(), oracle, "after failed compact");

  // Retry: renames succeed now, but the first WAL truncate fails — the
  // checkpoint is already durable, so Compact reports success and leaves
  // the stale records behind.
  ASSERT_TRUE(index.value()->Compact(nullptr).ok());
  EXPECT_EQ(index.value()->PendingDeltaOps(), 0u);
  EXPECT_GT(ReadFileBytes(dir + "/wal.log").size(), 0u);

  // Replay must skip the stale (seq <= checkpoint) records.
  index.value().reset();
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 0u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "after reopen");
}

// A crash exactly between manifest commit and WAL truncation, simulated by
// restoring the pre-compaction WAL image after a clean Compact.
TEST(RecoveryTest, CrashBetweenCheckpointAndTruncateIsIdempotent) {
  const std::string dir = FreshDir("ckpt_truncate_gap");
  Column column = SmallColumn();
  auto index = WritableBitmapIndex::Create(dir, column, SmallConfig());
  ASSERT_TRUE(index.ok());

  UpdateBatch batch = BatchOne(5);
  ASSERT_TRUE(index.value()->ApplyBatch(batch).ok());
  LogicalOracle oracle(column);
  oracle.Apply(batch);

  const std::vector<uint8_t> wal_before = ReadFileBytes(dir + "/wal.log");
  ASSERT_TRUE(index.value()->Compact(nullptr).ok());
  index.value().reset();

  // The crash left the old WAL in place alongside the new manifest.
  WriteFileBytes(dir + "/wal.log", wal_before, wal_before.size());
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 0u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "stale WAL skipped");
}

// A torn tail is trimmed on open and the log stays writable: the next
// batch lands after the repaired prefix and survives another reopen.
TEST(RecoveryTest, TornTailRepairKeepsLogWritable) {
  const std::string dir = FreshDir("torn_tail");
  Column column = SmallColumn();
  auto index = WritableBitmapIndex::Create(dir, column, SmallConfig());
  ASSERT_TRUE(index.ok());
  UpdateBatch one = BatchOne(5);
  UpdateBatch two = BatchTwo(column.row_count() + 4, 5);
  ASSERT_TRUE(index.value()->ApplyBatch(one).ok());
  ASSERT_TRUE(index.value()->ApplyBatch(two).ok());
  index.value().reset();

  std::vector<uint8_t> wal = ReadFileBytes(dir + "/wal.log");
  const std::vector<size_t> ends = RecordBoundaries(wal);
  ASSERT_EQ(ends.size(), 2u);
  WriteFileBytes(dir + "/wal.log", wal, ends[0] + 5);  // mid-second-record

  LogicalOracle oracle(column);
  oracle.Apply(one);
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 1u);
  EXPECT_EQ(reopened.value()->recovery_info().truncated_tail_records, 1u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "tail trimmed");

  // Write after repair, then prove the log is again fully intact.
  ASSERT_TRUE(reopened.value()->ApplyBatch(two).ok());
  oracle.Apply(two);
  reopened.value().reset();
  auto again = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->recovery_info().recovered_batches, 2u);
  EXPECT_EQ(again.value()->recovery_info().truncated_tail_records, 0u);
  ExpectStateMatchesOracle(*again.value(), oracle, "after repair + append");
}

// A complete record whose checksum fails is corruption, not a torn tail —
// short writes only ever shorten the file, so mid-file damage means the
// storage lied about durability.
TEST(RecoveryTest, ChecksumMismatchInCompleteRecordIsCorruption) {
  const std::string dir = FreshDir("midfile_corruption");
  Column column = SmallColumn();
  auto index = WritableBitmapIndex::Create(dir, column, SmallConfig());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index.value()->ApplyBatch(BatchOne(5)).ok());
  index.value().reset();

  std::vector<uint8_t> wal = ReadFileBytes(dir + "/wal.log");
  wal[wal.size() / 2] ^= 0x40;  // flip a payload bit, length intact
  WriteFileBytes(dir + "/wal.log", wal, wal.size());
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kCorruption);
}

// Reopening without intervening writes is idempotent: same recovered
// counts, same state, every time.
TEST(RecoveryTest, ReopenIsIdempotent) {
  const std::string dir = FreshDir("idempotent");
  Column column = SmallColumn();
  auto index = WritableBitmapIndex::Create(dir, column, SmallConfig());
  ASSERT_TRUE(index.ok());
  UpdateBatch batch = BatchOne(5);
  ASSERT_TRUE(index.value()->ApplyBatch(batch).ok());
  index.value().reset();

  LogicalOracle oracle(column);
  oracle.Apply(batch);
  for (int round = 0; round < 3; ++round) {
    auto reopened = WritableBitmapIndex::Open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 1u);
    ExpectStateMatchesOracle(*reopened.value(), oracle,
                             "round " + std::to_string(round));
  }
}

// The rename-then-no-dirsync crash point: the checkpoint MANIFEST was
// atomically renamed into place, but the *directory entry* never reached
// the platter — on power loss the directory may still name the old
// manifest. The injected dir-fsync failure makes Compact report exactly
// that (Unavailable, nothing truncated), and restoring the old MANIFEST
// bytes simulates the lost dirent: recovery must replay every WAL batch
// onto the old checkpoint and land bit-identical to the oracle.
TEST(RecoveryTest, CheckpointDirFsyncFailureSurvivesLostRename) {
  const std::string dir = FreshDir("dir_fsync_crash");
  Column column = SmallColumn();
  {
    auto created = WritableBitmapIndex::Create(dir, column, SmallConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  // Injector attached on reopen, so the initial checkpoint stays clean;
  // the first directory fsync it sees is Compact's commit-point sync.
  FaultInjector injector({.dir_fsync_fail_first_attempts = 1});
  auto index = WritableBitmapIndex::Open(dir, {.injector = &injector});
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  UpdateBatch one = BatchOne(5);
  UpdateBatch two = BatchTwo(column.values.size() + one.inserts.size(), 5);
  ASSERT_TRUE(index.value()->ApplyBatch(one).ok());
  ASSERT_TRUE(index.value()->ApplyBatch(two).ok());
  LogicalOracle oracle(column);
  oracle.Apply(one);
  oracle.Apply(two);

  const std::vector<uint8_t> manifest_before =
      ReadFileBytes(dir + "/MANIFEST");
  const std::vector<uint8_t> wal_before = ReadFileBytes(dir + "/wal.log");

  // The rename lands but its dirent sync fails: not durable, so Compact
  // must refuse to declare the checkpoint committed or touch the WAL.
  Status s = index.value()->Compact(nullptr);
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(index.value()->PendingDeltaOps(), one.ops() + two.ops());
  EXPECT_EQ(ReadFileBytes(dir + "/wal.log"), wal_before);
  ExpectStateMatchesOracle(*index.value(), oracle, "after failed compact");
  index.value().reset();

  // Power loss: the directory forgot the rename. Replay carries recovery.
  WriteFileBytes(dir + "/MANIFEST", manifest_before, manifest_before.size());
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 2u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "old manifest + replay");
}

// Same injected failure without the crash: the failed Compact is cleanly
// retryable, and the retry's checkpoint makes replay unnecessary.
TEST(RecoveryTest, CheckpointDirFsyncFailureIsRetryable) {
  const std::string dir = FreshDir("dir_fsync_retry");
  Column column = SmallColumn();
  {
    auto created = WritableBitmapIndex::Create(dir, column, SmallConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  FaultInjector injector({.dir_fsync_fail_first_attempts = 1});
  auto index = WritableBitmapIndex::Open(dir, {.injector = &injector});
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  UpdateBatch batch = BatchOne(5);
  ASSERT_TRUE(index.value()->ApplyBatch(batch).ok());
  LogicalOracle oracle(column);
  oracle.Apply(batch);

  EXPECT_EQ(index.value()->Compact(nullptr).code(),
            Status::Code::kUnavailable);
  ASSERT_TRUE(index.value()->Compact(nullptr).ok());
  EXPECT_EQ(index.value()->PendingDeltaOps(), 0u);
  EXPECT_EQ(injector.counters().flush_failures, 1u);

  index.value().reset();
  auto reopened = WritableBitmapIndex::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().recovered_batches, 0u);
  ExpectStateMatchesOracle(*reopened.value(), oracle, "after retried compact");
}

// Create refuses a directory that already holds an index, and Open refuses
// a directory that never held one.
TEST(RecoveryTest, CreateAndOpenGuardRails) {
  const std::string dir = FreshDir("guard_rails");
  Column column = SmallColumn();
  ASSERT_TRUE(WritableBitmapIndex::Create(dir, column, SmallConfig()).ok());
  EXPECT_FALSE(WritableBitmapIndex::Create(dir, column, SmallConfig()).ok());
  EXPECT_FALSE(WritableBitmapIndex::Open(FreshDir("never_created")).ok());
}

}  // namespace
}  // namespace bix
