// Integration tests for the TCP serving tier (DESIGN.md section 16): a
// real epoll server on an ephemeral loopback port feeding a real
// QueryService. Covers the query round trip (responses bit-identical to a
// direct QueryExecutor run), typed rejection of malformed input, accept
// backpressure, write batches, connection-lifecycle deadlines under a
// VirtualClock, client-disconnect cancellation, and graceful drain — both
// the "in-flight work finishes and flushes" half and the "wedged peer is
// force-closed at the drain deadline" half.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/bitmap_index_facade.h"
#include "core/writable_index.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "server/query_service.h"
#include "storage/fault_injector.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

bool WaitUntil(const std::function<bool()>& pred, double seconds = 8.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// Shared read-only serving stack: column, index, service, server.
struct ServeSetup {
  Column column;
  std::optional<BitmapIndex> index;
  std::optional<QueryService> service;
  std::optional<TcpServer> server;

  explicit ServeSetup(TcpServerOptions net_opts = {},
                      ServiceOptions svc_opts = {}, uint32_t rows = 20'000) {
    ColumnSpec spec;
    spec.rows = rows;
    spec.cardinality = 64;
    spec.zipf_z = 1.0;
    spec.seed = 11;
    column = GenerateZipfColumn(spec);
    IndexConfig config;
    config.encoding = EncodingKind::kInterval;
    index.emplace(BuildIndex(column, config).value());
    service.emplace(&*index, svc_opts);
    server.emplace(&*service, net_opts);
    BIX_CHECK_MSG(server->Start().ok(), "server failed to start");
  }

  ~ServeSetup() {
    if (server) server->Shutdown();
  }

  Bitvector Reference(const NetRequest& req) const {
    QueryExecutor executor(&*index, ExecutorOptions{});
    return req.type == FrameType::kInterval
               ? executor.EvaluateInterval(IntervalQuery{req.lo, req.hi, false})
               : executor.EvaluateMembership(req.values);
  }

  NetClient Client(NetClientOptions opts = {}) {
    return NetClient::Connect("127.0.0.1", server->port(), opts).value();
  }
};

NetRequest Interval(uint32_t id, uint32_t lo, uint32_t hi) {
  NetRequest req;
  req.type = FrameType::kInterval;
  req.request_id = id;
  req.lo = lo;
  req.hi = hi;
  return req;
}

NetRequest Membership(uint32_t id, std::vector<uint32_t> values) {
  NetRequest req;
  req.type = FrameType::kMembership;
  req.request_id = id;
  req.values = std::move(values);
  return req;
}

// A bare socket client the tests can shrink SO_RCVBUF on — the lever that
// makes server-side write backlogs (and so drain/write-deadline behavior)
// deterministic: responses larger than sndbuf + rcvbuf cannot drain until
// this client actually reads.
struct RawConn {
  int fd = -1;
  FrameParser parser{kNetDefaultMaxPayloadBytes};

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  static RawConn Open(uint16_t port, int rcvbuf_bytes) {
    RawConn c;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BIX_CHECK_MSG(c.fd >= 0, "socket()");
    if (rcvbuf_bytes > 0) {
      (void)::setsockopt(c.fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                         sizeof(rcvbuf_bytes));
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    BIX_CHECK_MSG(::connect(c.fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "connect()");
    return c;
  }

  void Send(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      BIX_CHECK_MSG(n > 0, "send()");
      off += static_cast<size_t>(n);
    }
  }

  // Reads until `count` response frames have been parsed (or the real-time
  // deadline passes). Returns responses keyed by request_id.
  std::map<uint32_t, NetResponse> ReadResponses(size_t count,
                                                double seconds = 8.0) {
    std::map<uint32_t, NetResponse> out;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    uint8_t buf[4096];
    while (out.size() < count && std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) break;  // server closed
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      BIX_CHECK_MSG(parser.Feed(buf, static_cast<size_t>(n)).ok(),
                    "response stream failed to parse");
      while (parser.HasFrame()) {
        NetResponse resp = DecodeResponse(parser.Next()).value();
        out.emplace(resp.request_id, std::move(resp));
      }
    }
    return out;
  }
};

TEST(NetServerTest, PingRoundTrip) {
  ServeSetup setup;
  NetClient client = setup.Client();
  NetRequest ping;
  ping.type = FrameType::kPing;
  const NetResponse resp = client.Call(ping).value();
  EXPECT_EQ(resp.code, Status::Code::kOk);
  const TcpServerStats stats = setup.server->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.frames_received, 1u);
}

TEST(NetServerTest, QueriesBitIdenticalToDirectExecutor) {
  ServeSetup setup;
  NetClient client = setup.Client();
  Rng rng(4711);
  for (int i = 0; i < 60; ++i) {
    NetRequest req;
    if (rng.Bernoulli(0.5)) {
      const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(0, 63));
      const uint32_t hi = static_cast<uint32_t>(rng.UniformInt(lo, 63));
      req = Interval(0, lo, hi);
    } else {
      std::vector<uint32_t> values;
      const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 6));
      for (uint32_t j = 0; j < k; ++j) {
        values.push_back(static_cast<uint32_t>(rng.UniformInt(0, 63)));
      }
      req = Membership(0, std::move(values));
    }
    const Bitvector expected = setup.Reference(req);
    const NetResponse resp = client.Call(req).value();
    ASSERT_EQ(resp.code, Status::Code::kOk) << resp.message;
    ASSERT_EQ(resp.row_bits, expected.size()) << "query " << i;
    ASSERT_EQ(resp.words, expected.words()) << "torn response at query " << i;
    EXPECT_EQ(resp.count, expected.Count());
  }
}

TEST(NetServerTest, CountOnlyAndTracedFlags) {
  ServeSetup setup;
  NetClient client = setup.Client();
  NetRequest req = Interval(0, 3, 9);
  req.count_only = true;
  req.traced = true;
  const Bitvector expected = setup.Reference(req);
  const NetResponse resp = client.Call(req).value();
  ASSERT_EQ(resp.code, Status::Code::kOk);
  EXPECT_EQ(resp.count, expected.Count());
  EXPECT_TRUE(resp.words.empty()) << "count-only must not ship the bitmap";
  EXPECT_FALSE(resp.trace.empty()) << "traced request lost its span tree";
}

// Pipelining: many requests written before any response is read; answers
// may come back out of order but each echoes its request_id and carries
// exactly its query's bits.
TEST(NetServerTest, PipelinedRequestsMatchByRequestId) {
  ServeSetup setup;
  RawConn conn = RawConn::Open(setup.server->port(), 0);
  std::map<uint32_t, Bitvector> expected;
  for (uint32_t id = 1; id <= 24; ++id) {
    const NetRequest req = Interval(id, id % 32, (id % 32) + 16);
    expected.emplace(id, setup.Reference(req));
    conn.Send(EncodeRequest(req));
  }
  const std::map<uint32_t, NetResponse> got = conn.ReadResponses(24);
  ASSERT_EQ(got.size(), 24u);
  for (const auto& [id, resp] : got) {
    ASSERT_EQ(resp.code, Status::Code::kOk);
    EXPECT_EQ(resp.words, expected.at(id).words()) << "request " << id;
  }
}

TEST(NetServerTest, MalformedBytesGetTypedErrorThenClose) {
  ServeSetup setup;
  NetClient client = setup.Client();
  const uint8_t junk[] = {0x00, 0x01, 0x02, 0x03};
  ASSERT_TRUE(client.SendBytes(junk, sizeof(junk)).ok());
  const NetResponse resp = client.ReadResponse().value();
  EXPECT_EQ(resp.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(resp.request_id, 0u);  // stream unframeable: no id to echo
  // The connection is poisoned; the server closes after the error frame.
  const Result<NetResponse> next = client.ReadResponse();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), Status::Code::kUnavailable);
  EXPECT_TRUE(WaitUntil([&] { return setup.server->stats().parse_errors >= 1; }));
}

// A frame that parses (CRC fine) but whose payload lies about its counts:
// the typed error echoes the request_id, so a pipelining client knows
// exactly which request was bad.
TEST(NetServerTest, SchemaErrorEchoesRequestId) {
  ServeSetup setup;
  NetClient client = setup.Client();
  NetRequest req = Membership(77, {1, 2, 3});
  std::vector<uint8_t> bytes = EncodeRequest(req);
  bytes[kNetHeaderBytes + 8] = 9;  // n: claims 9 values, carries 3
  const uint32_t crc =
      Crc32c(bytes.data() + kNetHeaderBytes, bytes.size() - kNetHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(client.SendBytes(bytes.data(), bytes.size()).ok());
  const NetResponse resp = client.ReadResponse().value();
  EXPECT_EQ(resp.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(resp.request_id, 77u);
}

// A hostile payload_len is refused from the header alone — the typed error
// comes back before the client has sent (or the server buffered) a single
// payload byte.
TEST(NetServerTest, OversizedFrameRejectedFromHeaderAlone) {
  TcpServerOptions opts;
  opts.max_payload_bytes = 1 << 16;
  ServeSetup setup(opts);
  NetClient client = setup.Client();
  std::vector<uint8_t> header = EncodeRequest(Membership(5, {1}));
  header.resize(kNetHeaderBytes);
  const uint32_t huge = 64u << 20;
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  ASSERT_TRUE(client.SendBytes(header.data(), header.size()).ok());
  const NetResponse resp = client.ReadResponse().value();
  EXPECT_EQ(resp.code, Status::Code::kOutOfRange);
}

TEST(NetServerTest, ConnectionCapRejectsWithTypedOverloadError) {
  TcpServerOptions opts;
  opts.max_connections = 2;
  ServeSetup setup(opts);
  NetClient a = setup.Client();
  NetClient b = setup.Client();
  // Make sure both are fully registered before the third knocks.
  NetRequest ping;
  ping.type = FrameType::kPing;
  ASSERT_TRUE(a.Call(ping).ok());
  ASSERT_TRUE(b.Call(ping).ok());
  NetClient c = setup.Client();
  const NetResponse resp = c.ReadResponse().value();
  EXPECT_EQ(resp.code, Status::Code::kUnavailable);
  EXPECT_EQ(resp.message, "server overloaded");
  EXPECT_EQ(setup.server->stats().rejected_overload, 1u);
  // The admitted connections still serve.
  EXPECT_TRUE(a.Call(ping).ok());
}

TEST(NetServerTest, WriteBatchAppliesDurablyAndServesMergedReads) {
  const std::string dir = ::testing::TempDir() + "/net_write_batch";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ColumnSpec spec;
  spec.rows = 5'000;
  spec.cardinality = 64;
  spec.zipf_z = 1.0;
  spec.seed = 11;
  const Column column = GenerateZipfColumn(spec);
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  auto writable = WritableBitmapIndex::Create(dir, column, config);
  ASSERT_TRUE(writable.ok());
  QueryService service(writable.value().get(), ServiceOptions{});
  TcpServerOptions opts;
  opts.writable = writable.value().get();
  TcpServer server(&service, opts);
  ASSERT_TRUE(server.Start().ok());

  NetClient client = NetClient::Connect("127.0.0.1", server.port()).value();
  const uint32_t old5 = column.values[5];
  const uint32_t new5 = (old5 + 1) % spec.cardinality;
  // Count who holds new5 before the write, through the wire.
  NetRequest probe = Membership(0, {new5});
  probe.count_only = true;
  const uint64_t before = client.Call(probe).value().count;

  NetRequest write;
  write.type = FrameType::kWriteBatch;
  write.inserts = {7, 9};
  write.updates = {{5, new5}};
  write.deletes = {11};
  const NetResponse resp = client.Call(write).value();
  ASSERT_EQ(resp.code, Status::Code::kOk) << resp.message;
  EXPECT_EQ(resp.count, 4u);  // ops applied

  EXPECT_EQ(writable.value()->LogicalValues()[5], new5);
  EXPECT_FALSE(writable.value()->LiveMask().Get(11));
  EXPECT_EQ(writable.value()->LogicalValues().size(), spec.rows + 2);
  // The delta is visible through the serving path immediately.
  uint64_t gained = new5 == 7 ? 1 : 0;  // inserted rows can also match
  gained += new5 == 9 ? 1 : 0;
  const uint64_t lost = column.values[11] == new5 ? 1 : 0;
  EXPECT_EQ(client.Call(probe).value().count, before + 1 + gained - lost);
  EXPECT_EQ(server.stats().write_batches, 1u);
  server.Shutdown();
}

TEST(NetServerTest, WriteBatchOnReadOnlyServerIsNotSupported) {
  ServeSetup setup;
  NetClient client = setup.Client();
  NetRequest write;
  write.type = FrameType::kWriteBatch;
  write.inserts = {1};
  const NetResponse resp = client.Call(write).value();
  EXPECT_EQ(resp.code, Status::Code::kNotSupported);
}

TEST(NetServerTest, IdleConnectionCulledOnVirtualClock) {
  VirtualClock vclock;
  TcpServerOptions opts;
  opts.idle_timeout_seconds = 30.0;
  opts.read_timeout_seconds = 1000.0;
  opts.write_timeout_seconds = 1000.0;
  opts.clock = &vclock;
  ServiceOptions svc;
  svc.clock = &vclock;
  ServeSetup setup(opts, svc);
  NetClient client = setup.Client();
  NetRequest ping;
  ping.type = FrameType::kPing;
  ASSERT_TRUE(client.Call(ping).ok());
  // No real time needs to pass: one virtual jump past the idle budget and
  // the next loop tick culls the connection.
  vclock.Advance(31.0);
  EXPECT_TRUE(WaitUntil([&] { return setup.server->stats().idle_timeouts == 1; }));
  const Result<NetResponse> read = client.ReadResponse();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(setup.server->stats().active, 0u);
}

TEST(NetServerTest, StalledMidFramePeerCutByReadDeadline) {
  VirtualClock vclock;
  TcpServerOptions opts;
  opts.idle_timeout_seconds = 1000.0;
  opts.read_timeout_seconds = 5.0;
  opts.write_timeout_seconds = 1000.0;
  opts.clock = &vclock;
  ServiceOptions svc;
  svc.clock = &vclock;
  ServeSetup setup(opts, svc);
  NetClient client = setup.Client();
  // Four valid header bytes, then silence: a slowloris opening move.
  const uint8_t partial[] = {kNetMagic, kNetVersion, 0x02, 0x00};
  ASSERT_TRUE(client.SendBytes(partial, sizeof(partial)).ok());
  // Let the bytes land (the loop must observe the half-frame) before
  // judging the stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  vclock.Advance(6.0);
  EXPECT_TRUE(WaitUntil([&] { return setup.server->stats().read_timeouts == 1; }));
  EXPECT_EQ(setup.server->stats().idle_timeouts, 0u);
}

TEST(NetServerTest, StuckReaderCutByWriteDeadline) {
  VirtualClock vclock;
  TcpServerOptions opts;
  opts.idle_timeout_seconds = 1000.0;
  opts.read_timeout_seconds = 1000.0;
  opts.write_timeout_seconds = 5.0;
  opts.sndbuf_bytes = 4096;
  opts.clock = &vclock;
  ServiceOptions svc;
  svc.clock = &vclock;
  ServeSetup setup(opts, svc);
  // Tiny receive window, a pile of bitmap-bearing responses, and a client
  // that never reads: the outbound backlog wedges.
  RawConn conn = RawConn::Open(setup.server->port(), 4096);
  for (uint32_t id = 1; id <= 40; ++id) {
    conn.Send(EncodeRequest(Interval(id, 0, 63)));
  }
  // Wait for the backlog to form (responses computed, socket full).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  vclock.Advance(6.0);
  EXPECT_TRUE(WaitUntil([&] { return setup.server->stats().write_timeouts == 1; }));
}

TEST(NetServerTest, DisconnectMidQueryFiresCancelAndCounts) {
  // Slow every storage read down with a real-time latency spike so the
  // query is reliably still in flight when the client dies.
  FaultInjectorOptions fault_opts;
  fault_opts.seed = 7;
  fault_opts.latency_spike_prob = 1.0;
  fault_opts.latency_spike_seconds = 0.15;
  FaultInjector injector(fault_opts);
  ServiceOptions svc;
  svc.fault_injector = &injector;
  ServeSetup setup(TcpServerOptions{}, svc);
  NetClient client = setup.Client();
  // Not the full domain: [0, cardinality-1] would rewrite to a fetch-free
  // all-ones answer and dodge the injected latency entirely.
  const std::vector<uint8_t> bytes = EncodeRequest(Interval(1, 5, 40));
  ASSERT_TRUE(client.SendBytes(bytes.data(), bytes.size()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  client.Abort();  // RST with the query mid-evaluation
  EXPECT_TRUE(
      WaitUntil([&] { return setup.server->stats().disconnect_cancels >= 1; }));
  // The server stays healthy for the next client.
  NetClient next = setup.Client();
  const NetResponse resp = next.Call(Interval(0, 1, 2)).value();
  EXPECT_EQ(resp.code, Status::Code::kOk);
}

// Graceful-drain regression (the satellite): a connection with responses
// still unflushed holds the server in drain; new connects are answered
// with a typed draining error; the held-back responses arrive complete and
// bit-identical; nothing is force-closed; and with the VirtualClock never
// advanced, Shutdown returning proves drain completed *within* the drain
// deadline rather than by expiring it.
TEST(NetServerTest, GracefulDrainFlushesInFlightAndRejectsNewConnects) {
  VirtualClock vclock;
  TcpServerOptions opts;
  opts.idle_timeout_seconds = 1000.0;
  opts.read_timeout_seconds = 1000.0;
  opts.write_timeout_seconds = 1000.0;
  opts.drain_deadline_seconds = 60.0;
  opts.sndbuf_bytes = 4096;
  opts.clock = &vclock;
  ServiceOptions svc;
  svc.clock = &vclock;
  ServeSetup setup(opts, svc);

  RawConn conn = RawConn::Open(setup.server->port(), 4096);
  std::map<uint32_t, Bitvector> expected;
  for (uint32_t id = 1; id <= 20; ++id) {
    const NetRequest req = Interval(id, 0, 63);
    expected.emplace(id, setup.Reference(req));
    conn.Send(EncodeRequest(req));
  }
  // Let the service finish the queries and wedge the flush against our
  // tiny receive window.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::thread drainer([&] { setup.server->Shutdown(); });
  // Draining is observable: a fresh connect gets one typed frame.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    NetClient late = setup.Client();
    const NetResponse resp = late.ReadResponse().value();
    EXPECT_EQ(resp.code, Status::Code::kUnavailable);
    EXPECT_EQ(resp.message, "server draining");
  }
  // Now actually read: drain must deliver every byte it owed us.
  const std::map<uint32_t, NetResponse> got = conn.ReadResponses(20);
  drainer.join();
  ASSERT_EQ(got.size(), 20u);
  for (const auto& [id, resp] : got) {
    ASSERT_EQ(resp.code, Status::Code::kOk);
    EXPECT_EQ(resp.words, expected.at(id).words())
        << "torn frame during drain, request " << id;
  }
  const TcpServerStats stats = setup.server->stats();
  EXPECT_EQ(stats.force_closes, 0u);
  EXPECT_GE(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.active, 0u);
}

// The other half of drain: a peer that never drains its responses cannot
// hold Shutdown hostage — at the (virtual) drain deadline it is
// force-closed and counted.
TEST(NetServerTest, DrainDeadlineForceClosesWedgedPeer) {
  VirtualClock vclock;
  TcpServerOptions opts;
  opts.idle_timeout_seconds = 1000.0;
  opts.read_timeout_seconds = 1000.0;
  opts.write_timeout_seconds = 1000.0;
  opts.drain_deadline_seconds = 5.0;
  opts.sndbuf_bytes = 4096;
  opts.clock = &vclock;
  ServiceOptions svc;
  svc.clock = &vclock;
  ServeSetup setup(opts, svc);

  RawConn conn = RawConn::Open(setup.server->port(), 4096);
  // Enough bitmap-bearing responses (~100 KiB) that the tiny send/receive
  // buffers cannot absorb them: the backlog is guaranteed to outlive the
  // drain deadline when nobody reads.
  for (uint32_t id = 1; id <= 40; ++id) {
    conn.Send(EncodeRequest(Interval(id, 0, 63)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread drainer([&] { setup.server->Shutdown(); });
  // Give Shutdown time to stamp the drain deadline, then blow past it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  vclock.Advance(6.0);
  drainer.join();  // returns because the wedged peer was force-closed
  const TcpServerStats stats = setup.server->stats();
  EXPECT_GE(stats.force_closes, 1u);
  EXPECT_EQ(stats.active, 0u);
}

}  // namespace
}  // namespace bix
