#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/interval_rewrite.h"
#include "query/membership_rewrite.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

TEST(MembershipRewriteTest, PaperExample) {
  // "A in {6,19,20,21,22,35}" -> (A=6) v (19<=A<=22) v (A=35).
  auto intervals = MembershipToIntervals({6, 19, 20, 21, 22, 35});
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], (IntervalQuery{6, 6}));
  EXPECT_EQ(intervals[1], (IntervalQuery{19, 22}));
  EXPECT_EQ(intervals[2], (IntervalQuery{35, 35}));
}

TEST(MembershipRewriteTest, HandlesUnsortedDuplicates) {
  auto intervals = MembershipToIntervals({5, 3, 4, 4, 9});
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (IntervalQuery{3, 5}));
  EXPECT_EQ(intervals[1], (IntervalQuery{9, 9}));
}

TEST(MembershipRewriteTest, SingleValueAndEmpty) {
  EXPECT_EQ(MembershipToIntervals({7}).size(), 1u);
  EXPECT_TRUE(MembershipToIntervals({}).empty());
}

TEST(QueryClassTest, EnumerationSizes) {
  // C = 10: EQ 10; 1RQ 2*(10-2) = 16; 2RQ = C(8,2) = 28; RQ = 44.
  EXPECT_EQ(EnumerateQueries(QueryClass::kEq, 10).size(), 10u);
  EXPECT_EQ(EnumerateQueries(QueryClass::k1Rq, 10).size(), 16u);
  EXPECT_EQ(EnumerateQueries(QueryClass::k2Rq, 10).size(), 28u);
  EXPECT_EQ(EnumerateQueries(QueryClass::kRq, 10).size(), 44u);
}

TEST(IntervalRewriteTest, PaperLeExample) {
  // "A <= 85" over base-<10,10>, range encoding:
  // (A_2 <= 7) v (A_2 <= 8 ^ A_1 <= 5). With range encoding the alpha is
  // the <= form and each predicate is one R leaf.
  Decomposition d = Decomposition::Make(100, {10, 10}).value();
  ExprPtr e = RewriteInterval(d, GetEncoding(EncodingKind::kRange), {0, 85});
  EXPECT_EQ(ExprToString(e), "(B2^7 | (B2^8 & B1^5))");
}

TEST(IntervalRewriteTest, PaperTrailingMaxDigitDrop) {
  // "A <= 499" over base-<10,10,10> simplifies to "A_3 <= 4".
  Decomposition d = Decomposition::Make(1000, {10, 10, 10}).value();
  ExprPtr e = RewriteInterval(d, GetEncoding(EncodingKind::kRange), {0, 499});
  EXPECT_EQ(ExprToString(e), "B3^4");
}

TEST(IntervalRewriteTest, EqualityDecomposesPerComponent) {
  // "A = 357" over base-<10,10,10>, equality encoding: E_3^3 ^ E_2^5 ^ E_1^7.
  Decomposition d = Decomposition::Make(1000, {10, 10, 10}).value();
  ExprPtr e =
      RewriteInterval(d, GetEncoding(EncodingKind::kEquality), {357, 357});
  EXPECT_EQ(CountDistinctLeaves(e), 3u);
  // Nested ANDs flatten into one conjunction.
  EXPECT_EQ(ExprToString(e), "(B3^3 & B2^5 & B1^7)");
}

TEST(IntervalRewriteTest, CommonPrefixBecomesEqualityConjunct) {
  // "4326 <= A <= 4377" over base-<10,10,10,10>: common prefix digits 4,3.
  Decomposition d = Decomposition::Make(10000, {10, 10, 10, 10}).value();
  ExprPtr e = RewriteInterval(d, GetEncoding(EncodingKind::kEquality),
                              {4326, 4377});
  // Leaves: E_4^4, E_3^3, then the suffix range 26..77 over two digits.
  std::vector<BitmapKey> leaves;
  CollectLeaves(e, &leaves);
  bool has_e4 = false, has_e3 = false;
  for (const BitmapKey& k : leaves) {
    if (k.component == 4) {
      EXPECT_EQ(k.slot, 4u);
      has_e4 = true;
    }
    if (k.component == 3) {
      EXPECT_EQ(k.slot, 3u);
      has_e3 = true;
    }
  }
  EXPECT_TRUE(has_e4);
  EXPECT_TRUE(has_e3);
}

TEST(IntervalRewriteTest, WholeDomainIsConstTrue) {
  Decomposition d = Decomposition::Make(50, {8, 7}).value();
  ExprPtr e = RewriteInterval(d, GetEncoding(EncodingKind::kInterval), {0, 49});
  EXPECT_EQ(e->op, ExprOp::kConst);
  EXPECT_TRUE(e->const_value);
}

TEST(IntervalRewriteTest, DomainSlackTreatedAsOpenTop) {
  // C = 50 over base-<8,7> covers 56 codes; "A >= 30" must not pay for the
  // unreachable codes 50..55: rewritten as NOT (A <= 29).
  Decomposition d = Decomposition::Make(50, {8, 7}).value();
  ExprPtr e = RewriteInterval(d, GetEncoding(EncodingKind::kRange), {30, 49});
  ASSERT_EQ(e->op, ExprOp::kNot);
}

// --- End-to-end: every encoding x decompositions x strategies vs naive ----

struct PipelineParam {
  EncodingKind encoding;
  std::vector<uint32_t> bases;
  bool compressed;
  EvalStrategy strategy;
};

std::string PipelineParamName(
    const ::testing::TestParamInfo<PipelineParam>& info) {
  std::string name = EncodingKindName(info.param.encoding);
  if (name == "EI*") name = "EIstar";
  name += "_b";
  for (uint32_t b : info.param.bases) name += std::to_string(b) + "_";
  name += info.param.compressed ? "bbc" : "raw";
  name += info.param.strategy == EvalStrategy::kQueryWise ? "_qw" : "_cw";
  return name;
}

class QueryPipeline : public ::testing::TestWithParam<PipelineParam> {
 protected:
  static constexpr uint32_t kCardinality = 30;

  QueryPipeline() {
    column_ = GenerateZipfColumn(
        {.rows = 3000, .cardinality = kCardinality, .zipf_z = 1.0, .seed = 5});
  }
  Column column_;
};

TEST_P(QueryPipeline, AllIntervalQueriesMatchNaive) {
  const PipelineParam& p = GetParam();
  Decomposition d = Decomposition::Make(kCardinality, p.bases).value();
  BitmapIndex index =
      BitmapIndex::Build(column_, d, p.encoding, p.compressed);
  ExecutorOptions opts;
  opts.strategy = p.strategy;
  QueryExecutor exec(&index, opts);
  for (uint32_t lo = 0; lo < kCardinality; ++lo) {
    for (uint32_t hi = lo; hi < kCardinality; ++hi) {
      EXPECT_EQ(exec.EvaluateInterval({lo, hi}),
                NaiveEvaluateInterval(column_, {lo, hi}))
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST_P(QueryPipeline, RandomMembershipQueriesMatchNaive) {
  const PipelineParam& p = GetParam();
  Decomposition d = Decomposition::Make(kCardinality, p.bases).value();
  BitmapIndex index =
      BitmapIndex::Build(column_, d, p.encoding, p.compressed);
  ExecutorOptions opts;
  opts.strategy = p.strategy;
  QueryExecutor exec(&index, opts);
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<uint32_t> values;
    const uint32_t count =
        static_cast<uint32_t>(rng.UniformInt(1, kCardinality));
    for (uint32_t i = 0; i < count; ++i) {
      values.push_back(
          static_cast<uint32_t>(rng.UniformInt(0, kCardinality - 1)));
    }
    EXPECT_EQ(exec.EvaluateMembership(values),
              NaiveEvaluateMembership(column_, values));
  }
}

std::vector<PipelineParam> PipelineParams() {
  std::vector<PipelineParam> params;
  const std::vector<std::vector<uint32_t>> bases = {
      {30}, {6, 5}, {2, 4, 4}, {2, 2, 2, 2, 2}};
  for (EncodingKind enc : AllEncodingKinds()) {
    for (const auto& b : bases) {
      params.push_back({enc, b, false, EvalStrategy::kComponentWise});
    }
    // Compressed + query-wise variants on the 2-component base to bound
    // test count; full coverage of the matrix is in the sweep test below.
    params.push_back({enc, {6, 5}, true, EvalStrategy::kComponentWise});
    params.push_back({enc, {6, 5}, false, EvalStrategy::kQueryWise});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, QueryPipeline,
                         ::testing::ValuesIn(PipelineParams()),
                         PipelineParamName);

// Exhaustive base-sequence sweep at a smaller cardinality: every 2-component
// decomposition of C = 12, every encoding, every interval query.
TEST(QueryPipelineSweep, EveryTwoComponentDecompositionC12) {
  Column column = GenerateZipfColumn(
      {.rows = 500, .cardinality = 12, .zipf_z = 0.0, .seed = 9});
  for (const auto& bases : EnumerateBaseSequences(12, 2)) {
    Decomposition d = Decomposition::Make(12, bases).value();
    for (EncodingKind enc : AllEncodingKinds()) {
      BitmapIndex index = BitmapIndex::Build(column, d, enc, false);
      QueryExecutor exec(&index, {});
      for (uint32_t lo = 0; lo < 12; ++lo) {
        for (uint32_t hi = lo; hi < 12; ++hi) {
          ASSERT_EQ(exec.EvaluateInterval({lo, hi}),
                    NaiveEvaluateInterval(column, {lo, hi}))
              << EncodingKindName(enc) << " " << d.ToString() << " [" << lo
              << "," << hi << "]";
        }
      }
    }
  }
}

// Three-component sweep on C = 18 with sampled queries.
TEST(QueryPipelineSweep, ThreeComponentDecompositionsC18) {
  Column column = GenerateZipfColumn(
      {.rows = 400, .cardinality = 18, .zipf_z = 1.0, .seed = 10});
  for (const auto& bases : EnumerateBaseSequences(18, 3)) {
    Decomposition d = Decomposition::Make(18, bases).value();
    for (EncodingKind enc : AllEncodingKinds()) {
      BitmapIndex index = BitmapIndex::Build(column, d, enc, false);
      QueryExecutor exec(&index, {});
      for (uint32_t lo = 0; lo < 18; lo += 2) {
        for (uint32_t hi = lo; hi < 18; hi += 3) {
          ASSERT_EQ(exec.EvaluateInterval({lo, hi}),
                    NaiveEvaluateInterval(column, {lo, hi}))
              << EncodingKindName(enc) << " " << d.ToString();
        }
      }
    }
  }
}

TEST(ExecutorStatsTest, ComponentWiseScansEachBitmapOnce) {
  Column column = GenerateZipfColumn(
      {.rows = 1000, .cardinality = 50, .zipf_z = 0.0, .seed = 3});
  BitmapIndex index =
      BitmapIndex::Build(column, Decomposition::SingleComponent(50),
                         EncodingKind::kInterval, false);
  ExecutorOptions opts;
  opts.strategy = EvalStrategy::kComponentWise;
  QueryExecutor exec(&index, opts);
  exec.EvaluateInterval({10, 20});  // one interval query: <= 2 scans
  EXPECT_LE(exec.stats().scans, 2u);
  EXPECT_EQ(exec.stats().rescans, 0u);
}

TEST(ExecutorStatsTest, QueryWiseRefetchesSharedBitmaps) {
  // A membership query whose constituents share I^0: query-wise fetches it
  // once per constituent (pool hits), component-wise only once.
  Column column = GenerateZipfColumn(
      {.rows = 1000, .cardinality = 50, .zipf_z = 0.0, .seed = 3});
  BitmapIndex index =
      BitmapIndex::Build(column, Decomposition::SingleComponent(50),
                         EncodingKind::kInterval, false);
  const std::vector<uint32_t> values = {5, 6, 7, 30, 31, 32};  // two ranges

  ExecutorOptions qw;
  qw.strategy = EvalStrategy::kQueryWise;
  QueryExecutor exec_qw(&index, qw);
  exec_qw.EvaluateMembership(values);

  ExecutorOptions cw;
  cw.strategy = EvalStrategy::kComponentWise;
  QueryExecutor exec_cw(&index, cw);
  exec_cw.EvaluateMembership(values);

  EXPECT_GE(exec_qw.stats().scans, exec_cw.stats().scans);
  // Both strategies read each distinct bitmap from disk at most once (the
  // pool is large).
  EXPECT_EQ(exec_qw.stats().rescans, 0u);
  EXPECT_EQ(exec_cw.stats().rescans, 0u);
}

TEST(ExecutorStatsTest, ColdPoolPerQueryRereadsAcrossQueries) {
  Column column = GenerateZipfColumn(
      {.rows = 1000, .cardinality = 50, .zipf_z = 0.0, .seed = 3});
  BitmapIndex index =
      BitmapIndex::Build(column, Decomposition::SingleComponent(50),
                         EncodingKind::kRange, false);
  ExecutorOptions opts;
  opts.cold_pool_per_query = true;
  QueryExecutor exec(&index, opts);
  exec.EvaluateInterval({10, 20});
  const uint64_t reads_once = exec.stats().disk_reads;
  exec.EvaluateInterval({10, 20});
  EXPECT_EQ(exec.stats().disk_reads, 2 * reads_once);

  ExecutorOptions warm;
  warm.cold_pool_per_query = false;
  QueryExecutor exec2(&index, warm);
  exec2.EvaluateInterval({10, 20});
  exec2.EvaluateInterval({10, 20});
  EXPECT_EQ(exec2.stats().disk_reads, reads_once);
  EXPECT_EQ(exec2.stats().pool_hits, reads_once);
}

TEST(ExecutorTest, IntervalScanBoundsAcrossEncodings) {
  // Single-component: I answers any interval in <= 2 scans, R in <= 2.
  Column column = GenerateZipfColumn(
      {.rows = 200, .cardinality = 40, .zipf_z = 0.0, .seed = 3});
  for (EncodingKind enc :
       {EncodingKind::kRange, EncodingKind::kInterval}) {
    BitmapIndex index = BitmapIndex::Build(
        column, Decomposition::SingleComponent(40), enc, false);
    QueryExecutor exec(&index, {});
    for (uint32_t lo = 0; lo < 40; ++lo) {
      for (uint32_t hi = lo; hi < 40; ++hi) {
        exec.ResetStats();
        exec.EvaluateInterval({lo, hi});
        EXPECT_LE(exec.stats().scans, 2u)
            << EncodingKindName(enc) << " [" << lo << "," << hi << "]";
      }
    }
  }
}

}  // namespace
}  // namespace bix
