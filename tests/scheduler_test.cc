// Tests for the evaluation strategies of Section 6.3, including the
// buffer-aware constituent ordering heuristic (the scheduling problem the
// paper leaves as future work).

#include <gtest/gtest.h>

#include "query/executor.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/scan_baseline.h"

namespace bix {
namespace {

class StrategySweep : public ::testing::TestWithParam<EvalStrategy> {};

TEST_P(StrategySweep, CorrectOnRandomMembershipQueries) {
  Column col = GenerateZipfColumn(
      {.rows = 2000, .cardinality = 40, .zipf_z = 1.0, .seed = 51});
  for (EncodingKind enc : BasicEncodingKinds()) {
    BitmapIndex index = BitmapIndex::Build(
        col, Decomposition::SingleComponent(40), enc, false);
    ExecutorOptions opts;
    opts.strategy = GetParam();
    opts.buffer_pool_bytes = 600;  // ~2 bitmaps: forces eviction pressure
    QueryExecutor exec(&index, opts);
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<uint32_t> values;
      for (int i = 0; i < 8; ++i) {
        values.push_back(static_cast<uint32_t>(rng.UniformInt(0, 39)));
      }
      ASSERT_EQ(exec.EvaluateMembership(values),
                NaiveEvaluateMembership(col, values))
          << EncodingKindName(enc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategySweep,
                         ::testing::Values(EvalStrategy::kQueryWise,
                                           EvalStrategy::kComponentWise,
                                           EvalStrategy::kBufferAware),
                         [](const ::testing::TestParamInfo<EvalStrategy>& i) {
                           switch (i.param) {
                             case EvalStrategy::kQueryWise:
                               return "QueryWise";
                             case EvalStrategy::kComponentWise:
                               return "ComponentWise";
                             case EvalStrategy::kBufferAware:
                               return "BufferAware";
                           }
                           return "Unknown";
                         });

// A workload crafted so constituent order matters: constituents alternate
// between two bitmap neighborhoods; buffer-aware ordering groups them.
std::vector<uint32_t> AlternatingNeighborhoodQuery() {
  // Interval encoding, C = 40, m = 19. Equality constituents near value 2
  // share I^2/I^3; constituents near 30 share I^11/I^10; interleave them.
  return {2, 30, 4, 32, 2 + 0, 34};  // rewrites to 5 constituents
}

TEST(BufferAwareTest, NoWorseDiskReadsThanQueryWiseUnderTinyPool) {
  Column col = GenerateZipfColumn(
      {.rows = 4000, .cardinality = 40, .zipf_z = 0.0, .seed = 9});
  BitmapIndex index = BitmapIndex::Build(
      col, Decomposition::SingleComponent(40), EncodingKind::kInterval,
      false);
  const uint64_t bitmap_bytes = (4000 / 8);

  auto disk_reads = [&](EvalStrategy strategy, uint64_t pool) {
    ExecutorOptions opts;
    opts.strategy = strategy;
    opts.buffer_pool_bytes = pool;
    QueryExecutor exec(&index, opts);
    Rng rng(17);
    uint64_t total = 0;
    for (int t = 0; t < 30; ++t) {
      std::vector<uint32_t> values;
      for (int i = 0; i < 10; ++i) {
        values.push_back(static_cast<uint32_t>(rng.UniformInt(0, 39)));
      }
      exec.EvaluateMembership(values);
    }
    total = exec.stats().disk_reads;
    return total;
  };

  for (uint64_t pool_bitmaps : {2u, 3u, 4u}) {
    const uint64_t pool = pool_bitmaps * (bitmap_bytes + 8);
    EXPECT_LE(disk_reads(EvalStrategy::kBufferAware, pool),
              disk_reads(EvalStrategy::kQueryWise, pool))
        << pool_bitmaps;
  }
}

TEST(BufferAwareTest, MatchesQueryWiseResultExactly) {
  Column col = GenerateZipfColumn(
      {.rows = 1000, .cardinality = 40, .zipf_z = 1.0, .seed = 4});
  BitmapIndex index = BitmapIndex::Build(
      col, Decomposition::SingleComponent(40), EncodingKind::kInterval,
      false);
  ExecutorOptions qw;
  qw.strategy = EvalStrategy::kQueryWise;
  ExecutorOptions ba;
  ba.strategy = EvalStrategy::kBufferAware;
  QueryExecutor exec_qw(&index, qw), exec_ba(&index, ba);
  const std::vector<uint32_t> values = AlternatingNeighborhoodQuery();
  EXPECT_EQ(exec_qw.EvaluateMembership(values),
            exec_ba.EvaluateMembership(values));
}

TEST(BufferAwareTest, GroupsConstituentsBySharedBitmaps) {
  // With a pool of exactly one bitmap plus slack, ordering by shared
  // leaves must save disk reads on the alternating workload relative to
  // the given order.
  Column col = GenerateZipfColumn(
      {.rows = 8000, .cardinality = 40, .zipf_z = 0.0, .seed = 13});
  BitmapIndex index = BitmapIndex::Build(
      col, Decomposition::SingleComponent(40), EncodingKind::kEquality,
      false);
  // Constituents: {v} and {v} again later — equality encoding, each
  // constituent = 1 bitmap; repeated values share exactly.
  const std::vector<uint32_t> values = {5, 20, 6, 21, 7, 22};
  // Under equality encoding this is 6 distinct bitmaps either way; the
  // orders agree. Sanity: identical results and scan counts.
  ExecutorOptions opts;
  opts.strategy = EvalStrategy::kBufferAware;
  opts.buffer_pool_bytes = 1200;
  QueryExecutor exec(&index, opts);
  EXPECT_EQ(exec.EvaluateMembership(values),
            NaiveEvaluateMembership(col, values));
  EXPECT_EQ(exec.stats().scans, 6u);
}

}  // namespace
}  // namespace bix
