// Differential oracle for the SIMD kernel tiers (DESIGN.md section 17):
// every tier the build+CPU can run must be bit-identical to the scalar
// reference on adversarial shapes — ragged tails, aliasing destinations,
// k=1..32 operand lists, all-zero/all-one words — at the raw word level,
// through the Bitvector API (trailing-bit invariant), through the Roaring
// container ops, and through full query evaluation over every encoding
// scheme and storage codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bitvector/bitvector.h"
#include "bitvector/kernels.h"
#include "compress/codec.h"
#include "compress/roaring.h"
#include "encoding/encoding_scheme.h"
#include "expr/evaluate.h"
#include "util/rng.h"

namespace bix {
namespace {

using kernels::Ops;
using kernels::Tier;

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    if (kernels::OpsForTier(t) != nullptr) tiers.push_back(t);
  }
  return tiers;
}

std::vector<Tier> VectorTiers() {
  std::vector<Tier> tiers = SupportedTiers();
  tiers.erase(std::remove(tiers.begin(), tiers.end(), Tier::kScalar),
              tiers.end());
  return tiers;
}

// Flips the process-wide active tier for a scope, restoring on exit, so
// Bitvector/Roaring/evaluator paths run under the tier being checked.
class TierGuard {
 public:
  explicit TierGuard(Tier t) : saved_(kernels::ActiveTier()) {
    EXPECT_TRUE(kernels::SetActiveTier(t));
  }
  ~TierGuard() { kernels::SetActiveTier(saved_); }

 private:
  Tier saved_;
};

// Word-array fill shapes the tails and unrolled strides must survive: pure
// random, all-zero, all-one, and random with zero/one words mixed in.
enum class Fill { kRandom, kZero, kOnes, kMixed };

std::vector<uint64_t> MakeWords(size_t n, Fill fill, Rng* rng) {
  std::vector<uint64_t> w(n);
  for (size_t i = 0; i < n; ++i) {
    switch (fill) {
      case Fill::kRandom:
        w[i] = rng->engine()();
        break;
      case Fill::kZero:
        w[i] = 0;
        break;
      case Fill::kOnes:
        w[i] = ~uint64_t{0};
        break;
      case Fill::kMixed: {
        const uint64_t pick = rng->UniformInt(0, 3);
        w[i] = pick == 0 ? 0 : pick == 1 ? ~uint64_t{0} : rng->engine()();
        break;
      }
    }
  }
  return w;
}

// The adversarial word counts from the issue's checklist: bit sizes 0, 1,
// 63, 64, 65, 511*64, 513*64 map to these word counts, padded with sizes
// that straddle every tier's stride and unroll boundaries (4/8/16 words).
const size_t kWordSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 511, 513};

const Fill kFills[] = {Fill::kRandom, Fill::kZero, Fill::kOnes, Fill::kMixed};

TEST(SimdKernelsOracle, PairwiseOpsMatchScalar) {
  const Ops& scalar = *kernels::OpsForTier(Tier::kScalar);
  Rng rng(1001);
  for (Tier t : VectorTiers()) {
    const Ops& ops = *kernels::OpsForTier(t);
    for (size_t n : kWordSizes) {
      for (Fill fill : kFills) {
        const std::vector<uint64_t> a = MakeWords(n, fill, &rng);
        const std::vector<uint64_t> b = MakeWords(n, Fill::kRandom, &rng);
        const auto check = [&](void (*vec)(uint64_t*, const uint64_t*,
                                           size_t),
                               void (*ref)(uint64_t*, const uint64_t*,
                                           size_t),
                               const char* name) {
          std::vector<uint64_t> got = a;
          std::vector<uint64_t> want = a;
          vec(got.data(), b.data(), n);
          ref(want.data(), b.data(), n);
          EXPECT_EQ(got, want)
              << name << " tier=" << kernels::TierName(t) << " n=" << n;
          // dst == src aliasing (the contract allows it).
          std::vector<uint64_t> self = a;
          std::vector<uint64_t> self_want = a;
          vec(self.data(), self.data(), n);
          ref(self_want.data(), self_want.data(), n);
          EXPECT_EQ(self, self_want)
              << name << " aliased tier=" << kernels::TierName(t)
              << " n=" << n;
        };
        check(ops.and_words, scalar.and_words, "and");
        check(ops.or_words, scalar.or_words, "or");
        check(ops.xor_words, scalar.xor_words, "xor");
        check(ops.andnot_words, scalar.andnot_words, "andnot");
        // not_words: out-of-place and fully aliased.
        std::vector<uint64_t> got(n);
        std::vector<uint64_t> want(n);
        ops.not_words(got.data(), a.data(), n);
        scalar.not_words(want.data(), a.data(), n);
        EXPECT_EQ(got, want) << "not tier=" << kernels::TierName(t);
        std::vector<uint64_t> self = a;
        ops.not_words(self.data(), self.data(), n);
        EXPECT_EQ(self, want) << "not aliased tier=" << kernels::TierName(t);
      }
    }
  }
}

TEST(SimdKernelsOracle, CountKernelsMatchScalar) {
  const Ops& scalar = *kernels::OpsForTier(Tier::kScalar);
  Rng rng(1002);
  for (Tier t : VectorTiers()) {
    const Ops& ops = *kernels::OpsForTier(t);
    for (size_t n : kWordSizes) {
      for (Fill fill : kFills) {
        const std::vector<uint64_t> a = MakeWords(n, fill, &rng);
        const std::vector<uint64_t> b = MakeWords(n, Fill::kMixed, &rng);
        EXPECT_EQ(ops.count(a.data(), n), scalar.count(a.data(), n))
            << "count tier=" << kernels::TierName(t) << " n=" << n;
        EXPECT_EQ(ops.and_count(a.data(), b.data(), n),
                  scalar.and_count(a.data(), b.data(), n))
            << "and_count tier=" << kernels::TierName(t) << " n=" << n;
        std::vector<uint64_t> got = a;
        std::vector<uint64_t> want = a;
        const uint64_t got_c = ops.and_with_count(got.data(), b.data(), n);
        const uint64_t want_c =
            scalar.and_with_count(want.data(), b.data(), n);
        EXPECT_EQ(got, want)
            << "and_with_count words tier=" << kernels::TierName(t);
        EXPECT_EQ(got_c, want_c)
            << "and_with_count count tier=" << kernels::TierName(t);
      }
    }
  }
}

TEST(SimdKernelsOracle, FoldKernelsMatchScalarForEveryWidthAndAlias) {
  const Ops& scalar = *kernels::OpsForTier(Tier::kScalar);
  Rng rng(1003);
  const size_t widths[] = {1, 2, 3, 4, 5, 8, 16, 32};
  const size_t sizes[] = {0, 1, 9, 65, 513};
  for (Tier t : VectorTiers()) {
    const Ops& ops = *kernels::OpsForTier(t);
    for (size_t k : widths) {
      for (size_t n : sizes) {
        std::vector<std::vector<uint64_t>> operands;
        for (size_t i = 0; i < k; ++i) {
          operands.push_back(MakeWords(n, kFills[i % 4], &rng));
        }
        std::vector<const uint64_t*> srcs;
        for (const auto& op : operands) srcs.push_back(op.data());
        const auto check = [&](void (*vec)(const uint64_t* const*, size_t,
                                           uint64_t*, size_t),
                               void (*ref)(const uint64_t* const*, size_t,
                                           uint64_t*, size_t),
                               const char* name) {
          std::vector<uint64_t> want(n, 0xA5A5A5A5A5A5A5A5ull);
          ref(srcs.data(), k, want.data(), n);
          std::vector<uint64_t> got(n, 0x5A5A5A5A5A5A5A5Aull);
          vec(srcs.data(), k, got.data(), n);
          EXPECT_EQ(got, want) << name << " tier=" << kernels::TierName(t)
                               << " k=" << k << " n=" << n;
          // dst aliasing each operand in turn (first, middle, last).
          for (size_t alias : {size_t{0}, k / 2, k - 1}) {
            std::vector<std::vector<uint64_t>> copy = operands;
            std::vector<const uint64_t*> copy_srcs;
            for (const auto& op : copy) copy_srcs.push_back(op.data());
            vec(copy_srcs.data(), k, copy[alias].data(), n);
            EXPECT_EQ(copy[alias], want)
                << name << " aliased op " << alias
                << " tier=" << kernels::TierName(t) << " k=" << k
                << " n=" << n;
          }
        };
        check(ops.and_many, scalar.and_many, "and_many");
        check(ops.or_many, scalar.or_many, "or_many");
        check(ops.xor_many, scalar.xor_many, "xor_many");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sorted-set intersection.
// ---------------------------------------------------------------------------

// Independent reference: the textbook two-pointer merge, written here so
// the gallop branch (and the vector windows) are pinned against a second
// implementation, not against themselves.
std::vector<uint16_t> MergeIntersect(const std::vector<uint16_t>& a,
                                     const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<uint16_t> SortedDistinct(size_t n, Rng* rng) {
  std::vector<uint16_t> v;
  uint32_t next = 0;
  while (v.size() < n && next < 65536) {
    if (rng->Bernoulli(0.3)) v.push_back(static_cast<uint16_t>(next));
    ++next;
  }
  return v;
}

void CheckIntersect(const std::vector<uint16_t>& a,
                    const std::vector<uint16_t>& b, const char* label) {
  const std::vector<uint16_t> want = MergeIntersect(a, b);
  for (Tier t : SupportedTiers()) {
    const Ops& ops = *kernels::OpsForTier(t);
    std::vector<uint16_t> out(std::min(a.size(), b.size()) + 1, 0xBEEF);
    const size_t n =
        ops.intersect_u16(a.data(), a.size(), b.data(), b.size(), out.data());
    ASSERT_EQ(n, want.size())
        << label << " tier=" << kernels::TierName(t) << " na=" << a.size()
        << " nb=" << b.size();
    EXPECT_TRUE(std::equal(want.begin(), want.end(), out.begin()))
        << label << " tier=" << kernels::TierName(t);
    // Symmetric call: intersection is commutative.
    std::vector<uint16_t> rev(out.size(), 0xBEEF);
    const size_t rn =
        ops.intersect_u16(b.data(), b.size(), a.data(), a.size(), rev.data());
    EXPECT_EQ(rn, want.size()) << label << " reversed";
    EXPECT_TRUE(std::equal(want.begin(), want.end(), rev.begin()))
        << label << " reversed tier=" << kernels::TierName(t);
  }
}

TEST(SimdKernelsOracle, IntersectU16MatchesMergeReference) {
  Rng rng(1004);
  CheckIntersect({}, {}, "both empty");
  CheckIntersect({}, {1, 2, 3}, "one empty");
  const std::vector<uint16_t> dense = [] {
    std::vector<uint16_t> v(4096);
    for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint16_t>(i);
    return v;
  }();
  CheckIntersect(dense, dense, "identical dense");
  CheckIntersect(dense, {0, 4095, 9000}, "dense vs endpoints");
  const std::vector<uint16_t> evens = [] {
    std::vector<uint16_t> v;
    for (uint32_t i = 0; i < 8192; i += 2) {
      v.push_back(static_cast<uint16_t>(i));
    }
    return v;
  }();
  const std::vector<uint16_t> odds = [] {
    std::vector<uint16_t> v;
    for (uint32_t i = 1; i < 8192; i += 2) {
      v.push_back(static_cast<uint16_t>(i));
    }
    return v;
  }();
  CheckIntersect(evens, odds, "disjoint interleaved");
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<uint16_t> a =
        SortedDistinct(rng.UniformInt(0, 3000), &rng);
    const std::vector<uint16_t> b =
        SortedDistinct(rng.UniformInt(0, 3000), &rng);
    CheckIntersect(a, b, "random");
  }
}

// Regression for the galloping branch of IntersectArrays: the cursor never
// advanced past a matched element, so every later lower_bound re-scanned
// it. Correctness was unaffected (lower_bound still found later probes),
// but the lopsided shape below pins the fixed path's output — every small
// element present in the large array, probes landing on consecutive large
// elements — against the merge reference for all tiers.
TEST(SimdKernelsOracle, IntersectGallopRegressionLopsidedSubset) {
  // nlarge/32 > nsmall forces the scalar gallop path: 60 probes into a
  // 4000-element array. The small array is a subset, so *every* probe hits
  // and the cursor must advance past each match to find the next.
  std::vector<uint16_t> large;
  for (uint32_t i = 0; i < 4000; ++i) {
    large.push_back(static_cast<uint16_t>(i * 3));
  }
  std::vector<uint16_t> small;
  for (uint32_t i = 0; i < 60; ++i) {
    // First 30 consecutive elements of large, then a spread tail.
    small.push_back(i < 30 ? large[i] : large[30 + (i - 30) * 100]);
  }
  CheckIntersect(small, large, "gallop subset");
  // Adjacent-value probes where the match is the immediate next element:
  // a cursor stuck on the previous match would still be correct but this
  // shape plus the subset one exercises both the hit and post-hit seams.
  std::vector<uint16_t> adjacent(small);
  for (uint16_t& v : adjacent) v = static_cast<uint16_t>(v + 1);
  CheckIntersect(adjacent, large, "gallop near-misses");
  // Probe set extending past the large array's end: the gallop must stop
  // cleanly at lo == end.
  std::vector<uint16_t> overshoot = {0, 3, 60000, 65535};
  CheckIntersect(overshoot, large, "gallop overshoot");
}

// ---------------------------------------------------------------------------
// Bitvector layer: trailing-bit invariant and cross-tier equality.
// ---------------------------------------------------------------------------

// The bit sizes from the issue's checklist, verbatim.
const uint64_t kBitSizes[] = {0, 1, 63, 64, 65, 511 * 64, 513 * 64};

Bitvector RandomBitvector(uint64_t bits, double density, Rng* rng) {
  Bitvector bv(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if (rng->Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

void ExpectTrailingClear(const Bitvector& bv, const char* label) {
  const uint64_t tail = bv.size() & 63;
  if (tail == 0 || bv.words().empty()) return;
  EXPECT_EQ(bv.words().back() >> tail, 0u)
      << label << " size=" << bv.size()
      << " tier=" << kernels::TierName(kernels::ActiveTier());
}

TEST(SimdKernelsOracle, BitvectorOpsBitIdenticalAcrossTiers) {
  Rng rng(1005);
  for (uint64_t bits : kBitSizes) {
    const Bitvector a = RandomBitvector(bits, 0.4, &rng);
    const Bitvector b = RandomBitvector(bits, 0.1, &rng);
    const std::vector<const Bitvector*> operands = {&a, &b, &a};

    // Scalar-tier reference results.
    Bitvector want_and;
    Bitvector want_not;
    Bitvector want_fused;
    uint64_t want_count = 0;
    uint64_t want_and_count = 0;
    {
      TierGuard g(Tier::kScalar);
      want_and = a;
      want_and.AndWith(b);
      Bitvector::NotInto(a, &want_not);
      Bitvector::OrManyInto(operands, &want_fused);
      want_count = a.Count();
      want_and_count = Bitvector::AndCount(a, b);
    }

    for (Tier t : VectorTiers()) {
      TierGuard g(t);
      Bitvector got = a;
      got.AndWith(b);
      EXPECT_EQ(got, want_and) << "AndWith bits=" << bits;
      got = a;
      got.OrWith(b);
      got.XorWith(b);
      got.AndNotWith(b);
      // OrWith/XorWith/AndNotWith round-trip: (a|b)^b & ~b == a & ~b.
      Bitvector ref = a;
      {
        TierGuard s(Tier::kScalar);
        ref.OrWith(b);
        ref.XorWith(b);
        ref.AndNotWith(b);
      }
      EXPECT_EQ(got, ref) << "Or/Xor/AndNot chain bits=" << bits;
      Bitvector got_not;
      Bitvector::NotInto(a, &got_not);
      EXPECT_EQ(got_not, want_not) << "NotInto bits=" << bits;
      ExpectTrailingClear(got_not, "NotInto");
      Bitvector self_not = a;
      self_not.NotSelf();
      EXPECT_EQ(self_not, want_not) << "NotSelf bits=" << bits;
      ExpectTrailingClear(self_not, "NotSelf");
      Bitvector got_fused;
      Bitvector::OrManyInto(operands, &got_fused);
      EXPECT_EQ(got_fused, want_fused) << "OrManyInto bits=" << bits;
      ExpectTrailingClear(got_fused, "OrManyInto");
      // Fused with the output aliasing an operand.
      Bitvector alias = a;
      Bitvector::OrManyInto({&alias, &b, &alias}, &alias);
      EXPECT_EQ(alias, want_fused) << "OrManyInto aliased bits=" << bits;
      EXPECT_EQ(a.Count(), want_count) << "Count bits=" << bits;
      EXPECT_EQ(Bitvector::AndCount(a, b), want_and_count)
          << "AndCount bits=" << bits;
      Bitvector awc = a;
      EXPECT_EQ(awc.AndWithCount(b), want_and_count)
          << "AndWithCount bits=" << bits;
      EXPECT_EQ(awc, want_and) << "AndWithCount words bits=" << bits;
    }
  }
}

TEST(SimdKernelsOracle, TrailingBitsStayClearAfterEverySimdStorePath) {
  Rng rng(1006);
  for (Tier t : SupportedTiers()) {
    TierGuard g(t);
    for (uint64_t bits : kBitSizes) {
      Bitvector all = Bitvector::AllOnes(bits);
      ExpectTrailingClear(all, "AllOnes");
      Bitvector inv = all;
      inv.NotSelf();
      ExpectTrailingClear(inv, "Not(AllOnes)");
      EXPECT_EQ(inv.Count(), 0u) << "Not(AllOnes) bits=" << bits;
      const Bitvector r = RandomBitvector(bits, 0.5, &rng);
      Bitvector n;
      Bitvector::NotInto(r, &n);
      ExpectTrailingClear(n, "NotInto(random)");
      EXPECT_EQ(n.Count() + r.Count(), bits) << "complement count";
      // Fused NOT-free paths preserve zero-padded tails by construction;
      // verify Count (which trusts the invariant) agrees with a bit loop.
      Bitvector fused;
      Bitvector::AndManyInto({&r, &all, &r}, &fused);
      ExpectTrailingClear(fused, "AndManyInto");
      EXPECT_EQ(fused, r) << "AND with all-ones identity bits=" << bits;
    }
  }
}

// ---------------------------------------------------------------------------
// Roaring container ops under every tier.
// ---------------------------------------------------------------------------

// Shapes chosen to materialize all three container types: sparse chunk
// (array), dense chunk (bitset), and solid-run chunk (run).
Bitvector MixedContainerBitmap(uint64_t bits, uint64_t seed) {
  Rng rng(seed);
  Bitvector bv(bits);
  const uint64_t chunk = RoaringBitmap::kChunkBits;
  for (uint64_t base = 0; base < bits; base += chunk) {
    const uint64_t end = std::min(bits, base + chunk);
    switch ((base / chunk + seed) % 3) {
      case 0:  // sparse -> array container
        for (int i = 0; i < 300; ++i) {
          bv.Set(base + rng.UniformInt(0, end - base - 1));
        }
        break;
      case 1:  // dense noise -> bitset container
        for (uint64_t p = base; p < end; ++p) {
          if (rng.Bernoulli(0.45)) bv.Set(p);
        }
        break;
      case 2:  // long runs -> run container
        for (uint64_t p = base; p < end; ++p) {
          if ((p / 5000) % 2 == 0) bv.Set(p);
        }
        break;
    }
  }
  return bv;
}

TEST(SimdKernelsOracle, RoaringOpsBitIdenticalAcrossTiers) {
  const uint64_t bits = 5 * RoaringBitmap::kChunkBits + 777;
  const Bitvector pa = MixedContainerBitmap(bits, 1);
  const Bitvector pb = MixedContainerBitmap(bits, 2);
  const RoaringBitmap ra = RoaringBitmap::FromBitvector(pa);
  const RoaringBitmap rb = RoaringBitmap::FromBitvector(pb);

  struct Snapshot {
    Bitvector and_bv, or_bv, xor_bv, andnot_bv, not_bv, and_in_place;
    uint64_t and_count_rr = 0;
    uint64_t and_count_rp = 0;
  };
  const auto run = [&]() {
    Snapshot s;
    s.and_bv = RoaringBitmap::And(ra, rb).ToBitvector();
    s.or_bv = RoaringBitmap::Or(ra, rb).ToBitvector();
    s.xor_bv = RoaringBitmap::Xor(ra, rb).ToBitvector();
    s.andnot_bv = RoaringBitmap::AndNot(ra, rb).ToBitvector();
    ra.NotInto(&s.not_bv);
    s.and_in_place = pb;
    ra.AndInPlace(&s.and_in_place);
    s.and_count_rr = RoaringBitmap::AndCount(ra, rb);
    s.and_count_rp = ra.AndCount(pb);
    return s;
  };

  Snapshot want;
  {
    TierGuard g(Tier::kScalar);
    want = run();
  }
  // Plain-domain cross-check of the scalar snapshot itself.
  EXPECT_EQ(want.and_bv, Bitvector::And(pa, pb));
  EXPECT_EQ(want.or_bv, Bitvector::Or(pa, pb));
  EXPECT_EQ(want.xor_bv, Bitvector::Xor(pa, pb));
  EXPECT_EQ(want.and_count_rr, Bitvector::AndCount(pa, pb));

  for (Tier t : VectorTiers()) {
    TierGuard g(t);
    const Snapshot got = run();
    EXPECT_EQ(got.and_bv, want.and_bv) << kernels::TierName(t);
    EXPECT_EQ(got.or_bv, want.or_bv) << kernels::TierName(t);
    EXPECT_EQ(got.xor_bv, want.xor_bv) << kernels::TierName(t);
    EXPECT_EQ(got.andnot_bv, want.andnot_bv) << kernels::TierName(t);
    EXPECT_EQ(got.not_bv, want.not_bv) << kernels::TierName(t);
    EXPECT_EQ(got.and_in_place, want.and_in_place) << kernels::TierName(t);
    EXPECT_EQ(got.and_count_rr, want.and_count_rr) << kernels::TierName(t);
    EXPECT_EQ(got.and_count_rp, want.and_count_rp) << kernels::TierName(t);
  }
}

// ---------------------------------------------------------------------------
// Query-level sweep: all 7 encodings x all 4 codecs x every tier.
// ---------------------------------------------------------------------------

// A column large enough that bitmaps span multiple words and codecs have
// real structure to compress, small enough to sweep exhaustively.
struct SweepIndex {
  uint64_t rows;
  uint32_t c;
  std::vector<uint32_t> values;          // row -> value
  std::vector<Bitvector> bitmaps;        // slot -> bitmap

  SweepIndex(const EncodingScheme& scheme, uint32_t cardinality,
             uint64_t row_count, uint64_t seed)
      : rows(row_count), c(cardinality) {
    Rng rng(seed);
    values.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      // Clustered values (runs) so BBC/WAH/Roaring all compress.
      const uint32_t v = static_cast<uint32_t>(
          (r / 97 + rng.UniformInt(0, 2)) % c);
      values.push_back(v);
    }
    bitmaps.assign(scheme.NumBitmaps(c), Bitvector(rows));
    std::vector<uint32_t> slots;
    for (uint64_t r = 0; r < rows; ++r) {
      slots.clear();
      scheme.SlotsForValue(c, values[r], &slots);
      for (uint32_t s : slots) bitmaps[s].Set(r);
    }
  }

  Bitvector Naive(uint32_t lo, uint32_t hi) const {
    Bitvector bv(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      if (values[r] >= lo && values[r] <= hi) bv.Set(r);
    }
    return bv;
  }
};

TEST(SimdKernelsOracle, QuerySweepAllEncodingsCodecsTiers) {
  constexpr uint32_t kCardinality = 18;
  constexpr uint64_t kRows = 20'000;
  const std::vector<std::pair<uint32_t, uint32_t>> queries = {
      {0, 0}, {0, 8}, {3, 3}, {3, 11}, {9, 17}, {17, 17}, {0, 17}};
  for (EncodingKind kind : AllEncodingKinds()) {
    const EncodingScheme& scheme = GetEncoding(kind);
    const SweepIndex idx(scheme, kCardinality, kRows, 42);
    for (int codec_raw = 0; codec_raw < kNumCodecs; ++codec_raw) {
      const CodecId codec_id = static_cast<CodecId>(codec_raw);
      const CodecInterface& codec = GetCodec(codec_id);
      // Encode once (under whatever tier is active — encoding is not a
      // kernel path under test here), decode+evaluate under every tier.
      std::vector<std::vector<uint8_t>> blobs;
      blobs.reserve(idx.bitmaps.size());
      for (const Bitvector& bv : idx.bitmaps) blobs.push_back(codec.Encode(bv));
      for (Tier t : SupportedTiers()) {
        TierGuard g(t);
        const DecodedLeafFetcher fetch = [&](BitmapKey key) {
          Result<DecodedBitmap> d =
              codec.DecodeResident(blobs[key.slot], idx.rows);
          EXPECT_TRUE(d.ok());
          return d.value();
        };
        for (const auto& [lo, hi] : queries) {
          const ExprPtr e = scheme.IntervalExpr(1, kCardinality, lo, hi);
          const Bitvector got =
              EvaluateExprDecoded(e, idx.rows, fetch).Take();
          const Bitvector want = idx.Naive(lo, hi);
          EXPECT_EQ(got, want)
              << scheme.name() << " codec=" << codec.name()
              << " tier=" << kernels::TierName(t) << " [" << lo << "," << hi
              << "]";
          EXPECT_EQ(EvaluateExprDecodedCount(e, idx.rows, fetch),
                    want.Count())
              << scheme.name() << " codec=" << codec.name() << " count"
              << " tier=" << kernels::TierName(t);
        }
      }
    }
  }
}

// Tier plumbing itself: detection, names, and the forced override.
TEST(SimdKernelsDispatch, TierTablesAndNames) {
  EXPECT_NE(kernels::OpsForTier(Tier::kScalar), nullptr);
  EXPECT_STREQ(kernels::TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(kernels::TierName(Tier::kAvx2), "avx2");
  EXPECT_STREQ(kernels::TierName(Tier::kAvx512), "avx512");
  const Tier max = kernels::MaxSupportedTier();
  EXPECT_NE(kernels::OpsForTier(max), nullptr);
  // Every tier at or below max that reports a table must be selectable,
  // and the active tier must round-trip through SetActiveTier.
  const Tier before = kernels::ActiveTier();
  for (Tier t : SupportedTiers()) {
    EXPECT_TRUE(kernels::SetActiveTier(t));
    EXPECT_EQ(kernels::ActiveTier(), t);
    EXPECT_EQ(&kernels::Active(), kernels::OpsForTier(t));
  }
  EXPECT_TRUE(kernels::SetActiveTier(before));
}

}  // namespace
}  // namespace bix
