// The data behind the paper's Section 7 remark that hybrid encodings are
// omitted from the plots because "they rarely offered a better index than
// non-hybrid ones (occasionally such an index had a slightly lower time at
// the expense of much higher space)". Measures all seven encodings on the
// paper's query sets and reports, per set, the Pareto frontier membership
// of each scheme.
//
//   $ ./hybrids_spacetime [--rows=N] [--cardinality=C] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                   .zipf_z = 1.0, .seed = args.seed});
  std::vector<QuerySet> sets = GeneratePaperQuerySets(c, args.seed + 1);

  std::printf("Hybrid encodings vs basic encodings "
              "(C=%u, z=1, rows=%llu, 1-component, uncompressed)\n\n",
              c, static_cast<unsigned long long>(args.rows));

  struct Config {
    EncodingKind enc;
    BitmapIndex index;
  };
  std::vector<Config> configs;
  for (EncodingKind enc : AllEncodingKinds()) {
    configs.push_back({enc, BitmapIndex::Build(
                                col, Decomposition::SingleComponent(c), enc,
                                false)});
  }

  for (const QuerySet& set : sets) {
    struct Point {
      EncodingKind enc;
      double mb;
      double ms;
    };
    std::vector<Point> points;
    for (const Config& cfg : configs) {
      bench::QueryRunCost cost = bench::RunQueries(cfg.index, set.queries);
      points.push_back(
          {cfg.enc,
           static_cast<double>(cfg.index.TotalStoredBytes()) / (1 << 20),
           cost.avg_seconds * 1e3});
    }
    std::printf("--- query set %s ---\n", set.spec.Label().c_str());
    bench::TablePrinter table({"encoding", "space(MB)", "time(ms)",
                               "on Pareto frontier"});
    for (const Point& p : points) {
      const bool dominated = std::any_of(
          points.begin(), points.end(), [&](const Point& q) {
            return (q.mb < p.mb - 1e-9 && q.ms <= p.ms + 1e-9) ||
                   (q.mb <= p.mb + 1e-9 && q.ms < p.ms - 1e-9);
          });
      table.AddRow({EncodingKindName(p.enc), bench::FormatDouble(p.mb, 2),
                    bench::FormatDouble(p.ms, 1), dominated ? "no" : "yes"});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected (paper remark): the frontier is almost always made\n"
              "of basic schemes (E for equality-rich sets, I elsewhere);\n"
              "ER/EI occasionally shave time at much higher space.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  else args.rows = std::min<uint64_t>(args.rows, 500'000);
  bix::Run(args);
  return 0;
}
