// Serving-tier load generator: end-to-end throughput and tail latency of
// the TCP front end (frame protocol -> epoll loop -> QueryService ->
// response flush), swept over concurrent connections, for both
// full-bitmap and count-only responses. Count-only answers skip shipping
// the result bitvector, so the spread between the two modes is the wire
// cost of result transfer; the connection sweep shows the single-threaded
// event loop feeding a multi-worker service.
//
//   net_throughput [--rows=N] [--cardinality=C] [--seed=S] [--quick]
//                  [--json=PATH]
//
// With --json, writes the BENCH_serving.json series artifact CI archives.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "server/query_service.h"
#include "util/rng.h"
#include "workload/column_gen.h"

namespace bix {
namespace bench {
namespace {

struct LoadPoint {
  std::string mode;
  uint32_t connections = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[idx] * 1e3;
}

LoadPoint RunLoad(uint16_t port, uint32_t cardinality, uint32_t connections,
                  uint32_t queries_per_conn, bool count_only, uint64_t seed) {
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + t);
      Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      lat[t].reserve(queries_per_conn);
      for (uint32_t i = 0; i < queries_per_conn; ++i) {
        NetRequest req;
        req.type = FrameType::kInterval;
        req.lo = static_cast<uint32_t>(rng.UniformInt(0, cardinality - 2));
        req.hi = static_cast<uint32_t>(
            rng.UniformInt(req.lo, cardinality - 2));
        req.count_only = count_only;
        const auto q0 = std::chrono::steady_clock::now();
        const Result<NetResponse> resp = client.value().Call(req);
        if (!resp.ok() || resp.value().code != Status::Code::kOk) continue;
        lat[t].push_back(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - q0)
                             .count());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  LoadPoint point;
  point.mode = count_only ? "count_only" : "bitmap";
  point.connections = connections;
  point.qps = wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;
  point.p50_ms = PercentileMs(&all, 0.50);
  point.p99_ms = PercentileMs(&all, 0.99);
  return point;
}

}  // namespace
}  // namespace bench
}  // namespace bix

int main(int argc, char** argv) {
  using namespace bix;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t rows = args.quick ? 100'000 : args.rows;
  const uint32_t queries_per_conn = args.quick ? 200 : 1'000;

  ColumnSpec spec;
  spec.rows = rows;
  spec.cardinality = args.cardinality;
  spec.zipf_z = 1.0;
  spec.seed = args.seed;
  const Column column = GenerateZipfColumn(spec);
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  const BitmapIndex index = BuildIndex(column, config).value();

  ServiceOptions svc;
  svc.num_workers = 4;
  QueryService service(&index, svc);
  TcpServerOptions opts;
  opts.max_connections = 64;
  TcpServer server(&service, opts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }

  std::printf("net serving throughput: rows=%llu cardinality=%u "
              "queries/conn=%u\n\n",
              static_cast<unsigned long long>(rows), args.cardinality,
              queries_per_conn);

  std::vector<uint32_t> sweep =
      args.quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4, 8};
  std::vector<bench::LoadPoint> points;
  bench::TablePrinter table({"mode", "conns", "qps", "p50_ms", "p99_ms"});
  for (const bool count_only : {false, true}) {
    for (const uint32_t conns : sweep) {
      const bench::LoadPoint p = bench::RunLoad(
          server.port(), args.cardinality, conns, queries_per_conn,
          count_only, args.seed);
      points.push_back(p);
      table.AddRow({p.mode, std::to_string(p.connections),
                    bench::FormatDouble(p.qps, 0),
                    bench::FormatDouble(p.p50_ms, 3),
                    bench::FormatDouble(p.p99_ms, 3)});
    }
  }
  table.Print();
  const TcpServerStats stats = server.stats();
  std::printf("\nserver: %llu frames in, %llu responses out, %llu parse "
              "errors, %llu rejected\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.rejected_overload));
  std::printf("Expected: count_only clears bitmap mode at every width (no\n"
              "result transfer); qps grows with connections until the four\n"
              "service workers saturate.\n");
  server.Shutdown();

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"net_throughput\",\n"
                 "  \"rows\": %llu,\n  \"cardinality\": %u,\n"
                 "  \"seed\": %llu,\n  \"series\": [\n",
                 static_cast<unsigned long long>(rows), args.cardinality,
                 static_cast<unsigned long long>(args.seed));
    for (size_t i = 0; i < points.size(); ++i) {
      const bench::LoadPoint& p = points[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"connections\": %u, "
                   "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   p.mode.c_str(), p.connections, p.qps, p.p50_ms, p.p99_ms,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu series points)\n", args.json_path.c_str(),
                points.size());
  }
  return 0;
}
