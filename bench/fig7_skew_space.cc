// Reproduces paper Figure 7: effect of data skew on the space-efficiency of
// compressed indexes, for n = 1, 2, 5 components. Each cell is the ratio of
// the compressed n-component index to the uncompressed one-component
// equality-encoded index, for z in {0, 1, 2, 3}.
//
//   $ ./fig7_skew_space [--rows=N] [--cardinality=C] [--seed=S] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  const std::vector<uint32_t> ns = args.quick ? std::vector<uint32_t>{1, 2}
                                              : std::vector<uint32_t>{1, 2, 5};
  const std::vector<double> zs = {0.0, 1.0, 2.0, 3.0};

  std::printf("Figure 7: effect of data skew on compressed index space "
              "(C=%u, rows=%llu)\n",
              c, static_cast<unsigned long long>(args.rows));
  std::printf("cells: compressed n-component index / uncompressed "
              "1-component equality index\n\n");

  for (uint32_t n : ns) {
    std::printf("--- n = %u components ---\n", n);
    bench::TablePrinter table(
        {"encoding", "z=0", "z=1", "z=2", "z=3"});
    for (EncodingKind enc : BasicEncodingKinds()) {
      Result<Decomposition> d = ChooseSpaceOptimalBases(c, n, enc);
      if (!d.ok()) continue;
      std::vector<std::string> row = {EncodingKindName(enc)};
      for (double z : zs) {
        Column col = GenerateZipfColumn(
            {.rows = args.rows, .cardinality = c, .zipf_z = z,
             .seed = args.seed});
        const uint64_t base_bytes =
            BitmapIndex::Build(col, Decomposition::SingleComponent(c),
                               EncodingKind::kEquality, false)
                .TotalStoredBytes();
        BitmapIndex cmp = BitmapIndex::Build(col, d.value(), enc, true);
        row.push_back(bench::FormatDouble(
            static_cast<double>(cmp.TotalStoredBytes()) /
            static_cast<double>(base_bytes)));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): every cell shrinks as z grows, and\n"
              "the spread between encodings narrows at high skew.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
