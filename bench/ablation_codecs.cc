// Ablation: BBC (the paper's codec) vs WAH (the codec FastBit later
// standardized) vs verbatim storage, per encoding scheme and skew level.
// Reports stored size and single-thread encode/decode throughput, showing
// why the paper's compressibility ranking (E best, I worst, Figure 6b) is
// codec-independent.
//
//   $ ./ablation_codecs [--rows=N] [--cardinality=C] [--quick]

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_support.h"
#include "compress/bbc.h"
#include "compress/wah.h"
#include "core/bitmap_index_facade.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  std::printf("Codec ablation: BBC vs WAH vs verbatim per encoding "
              "(C=%u, rows=%llu)\n\n",
              c, static_cast<unsigned long long>(args.rows));

  for (double z : args.quick ? std::vector<double>{1.0}
                             : std::vector<double>{0.0, 1.0, 3.0}) {
    Column col = GenerateZipfColumn(
        {.rows = args.rows, .cardinality = c, .zipf_z = z, .seed = args.seed});
    std::printf("--- z = %.0f ---\n", z);
    bench::TablePrinter table({"encoding", "verbatim(MB)", "bbc(MB)",
                               "wah(MB)", "bbc enc(MB/s)", "bbc dec(MB/s)",
                               "wah dec(MB/s)"});
    for (EncodingKind enc : BasicEncodingKinds()) {
      BitmapIndex index = BitmapIndex::Build(
          col, Decomposition::SingleComponent(c), enc, false);
      uint64_t verbatim = 0, bbc = 0, wah = 0;
      double bbc_enc_s = 0, bbc_dec_s = 0, wah_dec_s = 0;
      const uint32_t slots = GetEncoding(enc).NumBitmaps(c);
      for (uint32_t s = 0; s < slots; ++s) {
        Bitvector bv = index.store().Materialize({1, s});
        verbatim += bv.byte_size();
        auto t0 = std::chrono::steady_clock::now();
        BbcEncoded be = BbcEncode(bv);
        bbc_enc_s += Seconds(t0);
        bbc += be.byte_size();
        t0 = std::chrono::steady_clock::now();
        Bitvector bd = BbcDecodeUnchecked(be);
        bbc_dec_s += Seconds(t0);
        BIX_CHECK(bd == bv);
        WahEncoded we = WahEncode(bv);
        wah += we.byte_size();
        t0 = std::chrono::steady_clock::now();
        Bitvector wd = WahDecodeUnchecked(we);
        wah_dec_s += Seconds(t0);
        BIX_CHECK(wd == bv);
      }
      const double mb = static_cast<double>(verbatim) / (1 << 20);
      table.AddRow({EncodingKindName(enc), bench::FormatDouble(mb, 2),
                    bench::FormatDouble(static_cast<double>(bbc) / (1 << 20), 2),
                    bench::FormatDouble(static_cast<double>(wah) / (1 << 20), 2),
                    bench::FormatDouble(mb / bbc_enc_s, 0),
                    bench::FormatDouble(mb / bbc_dec_s, 0),
                    bench::FormatDouble(mb / wah_dec_s, 0)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected: compressed-size ordering E < R < I under both\n"
              "codecs; BBC slightly tighter than WAH on sparse bitmaps\n"
              "(byte vs 31-bit granularity).\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
