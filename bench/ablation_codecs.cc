// Ablation: verbatim vs BBC (the paper's codec) vs WAH (the codec FastBit
// later standardized) vs Roaring containers, per encoding scheme and skew
// level — all seven encodings through the codec registry. Reports stored
// size and single-thread encode/decode throughput, showing that the
// paper's compressibility ranking (E best, I worst, Figure 6b) is
// codec-independent and where the Roaring tier lands on the frontier.
//
//   $ ./ablation_codecs [--rows=N] [--cardinality=C] [--quick] [--json=PATH]
//
// With --json=PATH, also writes a machine-readable series (the
// BENCH_codecs.json perf-trajectory artifact).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "compress/codec.h"
#include "core/bitmap_index_facade.h"
#include "index/reorder.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CodecPoint {
  double zipf_z = 0.0;
  EncodingKind encoding = EncodingKind::kEquality;
  CodecId codec = CodecId::kVerbatim;
  ReorderStrategy reorder = ReorderStrategy::kNone;
  uint64_t stored_bytes = 0;
  double encode_mb_per_s = 0.0;
  double decode_mb_per_s = 0.0;
};

// kNone first: the unreordered row is the baseline every reordered series
// point is gated against in CI.
std::vector<ReorderStrategy> SweepStrategies() {
  std::vector<ReorderStrategy> all = {ReorderStrategy::kNone};
  all.insert(all.end(), AllReorderStrategies().begin(),
             AllReorderStrategies().end());
  return all;
}

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  std::printf("Codec ablation: verbatim vs BBC vs WAH vs Roaring per "
              "encoding (C=%u, rows=%llu)\n\n",
              c, static_cast<unsigned long long>(args.rows));

  std::vector<CodecPoint> points;
  for (double z : args.quick ? std::vector<double>{1.0}
                             : std::vector<double>{0.0, 1.0, 3.0}) {
    Column col = GenerateZipfColumn(
        {.rows = args.rows, .cardinality = c, .zipf_z = z, .seed = args.seed});
    for (ReorderStrategy strategy : SweepStrategies()) {
    std::printf("--- z = %.0f, reorder = %s ---\n", z,
                ReorderStrategyName(strategy));
    const Decomposition d = Decomposition::SingleComponent(c);
    const Column swept = ApplyRowOrder(col, ComputeRowOrder(col, d, strategy));
    bench::TablePrinter table({"encoding", "verbatim(MB)", "bbc(MB)",
                               "wah(MB)", "roaring(MB)", "bbc dec(MB/s)",
                               "wah dec(MB/s)", "roar dec(MB/s)"});
    for (EncodingKind enc : AllEncodingKinds()) {
      BitmapIndex index = BitmapIndex::Build(swept, d, enc, false);
      uint64_t bytes[kNumCodecs] = {};
      double enc_s[kNumCodecs] = {};
      double dec_s[kNumCodecs] = {};
      uint64_t verbatim_bytes = 0;
      const uint32_t slots = GetEncoding(enc).NumBitmaps(c);
      for (uint32_t s = 0; s < slots; ++s) {
        Bitvector bv = index.store().Materialize({1, s});
        verbatim_bytes += bv.byte_size();
        for (int ci = 0; ci < kNumCodecs; ++ci) {
          const CodecInterface& codec = GetCodec(static_cast<CodecId>(ci));
          auto t0 = std::chrono::steady_clock::now();
          const std::vector<uint8_t> encoded = codec.Encode(bv);
          enc_s[ci] += Seconds(t0);
          bytes[ci] += encoded.size();
          t0 = std::chrono::steady_clock::now();
          Bitvector decoded = codec.DecodeUnchecked(encoded, bv.size());
          dec_s[ci] += Seconds(t0);
          BIX_CHECK(decoded == bv);
        }
      }
      const double mb = static_cast<double>(verbatim_bytes) / (1 << 20);
      auto mbs = [&](double s) { return s > 0.0 ? mb / s : 0.0; };
      table.AddRow(
          {EncodingKindName(enc), bench::FormatDouble(mb, 2),
           bench::FormatDouble(static_cast<double>(bytes[1]) / (1 << 20), 2),
           bench::FormatDouble(static_cast<double>(bytes[2]) / (1 << 20), 2),
           bench::FormatDouble(static_cast<double>(bytes[3]) / (1 << 20), 2),
           bench::FormatDouble(mbs(dec_s[1]), 0),
           bench::FormatDouble(mbs(dec_s[2]), 0),
           bench::FormatDouble(mbs(dec_s[3]), 0)});
      for (int ci = 0; ci < kNumCodecs; ++ci) {
        points.push_back({z, enc, static_cast<CodecId>(ci), strategy,
                          bytes[ci], mbs(enc_s[ci]), mbs(dec_s[ci])});
      }
    }
    table.Print();
    std::printf("\n");
    }
  }
  std::printf("Expected: compressed-size ordering E < R < I under every\n"
              "codec; BBC slightly tighter than WAH on sparse bitmaps (byte\n"
              "vs 31-bit granularity); Roaring competitive on space at every\n"
              "skew with by far the fastest decode (containers, not runs).\n"
              "Every reordering strategy shrinks every run-length codec\n"
              "versus reorder=none (equal values become contiguous runs);\n"
              "CI gates BBC/WAH/Roaring on exactly that monotonicity.\n");

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_codecs\",\n"
                 "  \"rows\": %llu,\n  \"cardinality\": %u,\n"
                 "  \"seed\": %llu,\n  \"series\": [\n",
                 static_cast<unsigned long long>(args.rows), c,
                 static_cast<unsigned long long>(args.seed));
    for (size_t i = 0; i < points.size(); ++i) {
      const CodecPoint& p = points[i];
      std::fprintf(
          f,
          "    {\"zipf_z\": %.1f, \"encoding\": \"%s\", \"codec\": \"%s\", "
          "\"reorder\": \"%s\", "
          "\"stored_bytes\": %llu, \"encode_mb_per_s\": %.1f, "
          "\"decode_mb_per_s\": %.1f}%s\n",
          p.zipf_z, EncodingKindName(p.encoding), CodecName(p.codec),
          ReorderStrategyName(p.reorder),
          static_cast<unsigned long long>(p.stored_bytes), p.encode_mb_per_s,
          p.decode_mb_per_s, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu series points)\n", args.json_path.c_str(),
                points.size());
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
