// Reproduces paper Figure 9: effect of data skew on the space-time
// tradeoff. For z in {0, 1, 2, 3}, prints every (encoding, n, compressed?)
// configuration's index size and average processing time over all 8 query
// sets, and summarizes which form (compressed or uncompressed) dominates
// per encoding.
//
// Expected shape (paper): for z in {0,1} uncompressed indexes dominate and
// interval encoding wins overall; for z in {2,3} compressed indexes
// dominate.
//
//   $ ./fig9_skew_spacetime [--rows=N] [--cardinality=C] [--seed=S] [--quick]

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "index/reorder.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

// One space-time tier: a storage codec plus an optional row-reordering
// preprocessing pass (DESIGN.md section 18). The reordered tier carries
// its permutation so RunQueries still answers in original RIDs.
struct Tier {
  StorageCodec codec;
  ReorderStrategy reorder;
  const char* tag;
};

BitmapIndex BuildTier(const Column& col, const Decomposition& d,
                      EncodingKind enc, const Tier& tier) {
  if (tier.reorder == ReorderStrategy::kNone) {
    return BitmapIndex::Build(col, d, enc, tier.codec);
  }
  std::vector<uint32_t> order = ComputeRowOrder(col, d, tier.reorder);
  BitmapIndex index =
      BitmapIndex::Build(ApplyRowOrder(col, order), d, enc, tier.codec);
  index.SetRowOrder(std::move(order));
  return index;
}

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  std::vector<MembershipQuery> queries =
      bench::FlattenQuerySets(GeneratePaperQuerySets(c, args.seed + 1));
  const std::vector<double> zs =
      args.quick ? std::vector<double>{0.0, 2.0}
                 : std::vector<double>{0.0, 1.0, 2.0, 3.0};
  const std::vector<uint32_t> ns =
      args.quick ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 6};

  std::printf("Figure 9: effect of data skew on space-time tradeoff "
              "(C=%u, rows=%llu, avg over all 8 query sets)\n\n",
              c, static_cast<unsigned long long>(args.rows));

  for (double z : zs) {
    Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                     .zipf_z = z, .seed = args.seed});
    std::printf("--- z = %.0f ---\n", z);
    bench::TablePrinter table({"config", "space(MB)", "time(ms)", "io(ms)",
                               "decode(ms)", "cpu(ms)"});
    // Track, per encoding at n=1, which form is faster (the paper's
    // compressed-vs-uncompressed crossover).
    // Third tier alongside the paper's binary choice: Roaring containers
    // ("roa"), which evaluate on the compressed form. Fourth tier: BBC
    // over Gray-code row reordering ("reo") — the preprocessing pass that
    // clusters equal values before the bitmaps are built.
    const std::vector<Tier> tiers = {
        {StorageCodec::kVerbatim, ReorderStrategy::kNone, "unc"},
        {StorageCodec::kBbc, ReorderStrategy::kNone, "cmp"},
        {StorageCodec::kRoaring, ReorderStrategy::kNone, "roa"},
        {StorageCodec::kBbc, ReorderStrategy::kGrayCode, "reo"}};
    for (EncodingKind enc : BasicEncodingKinds()) {
      for (uint32_t n : ns) {
        Result<Decomposition> d = ChooseSpaceOptimalBases(c, n, enc);
        if (!d.ok()) continue;
        for (const auto& tier : tiers) {
          const char* tag = tier.tag;
          BitmapIndex index = BuildTier(col, d.value(), enc, tier);
          bench::QueryRunCost cost = bench::RunQueries(index, queries);
          std::string label = std::string(tag) + " " +
                              EncodingKindName(enc) + " n=" +
                              std::to_string(n);
          table.AddRow(
              {label,
               bench::FormatDouble(
                   static_cast<double>(index.TotalStoredBytes()) / (1 << 20),
                   2),
               bench::FormatDouble(cost.avg_seconds * 1e3, 1),
               bench::FormatDouble(cost.avg_io_seconds * 1e3, 1),
               bench::FormatDouble(cost.avg_decode_seconds * 1e3, 1),
               bench::FormatDouble(cost.avg_cpu_seconds * 1e3, 1)});
        }
      }
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
