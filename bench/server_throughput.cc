// Query-service scaling bench: queries/sec and tail latency vs worker
// count for the three single-component encodings, over a Zipf-skewed
// interval workload. Cache misses sleep their modeled DiskModel latency
// (io_latency_scale), so throughput reflects the system the paper models —
// workers overlap disk waits, and the shared sharded cache turns popular
// bitmaps into latency-free hits across queries. The interesting
// comparison is 4 workers vs 1 on the same workload (>2x is shared-cache
// scaling at work, since a single core can overlap simulated I/O but not
// real CPU).
//
//   server_throughput [--rows=N] [--cardinality=C] [--seed=S] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "server/query_service.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/zipf.h"

namespace bix {
namespace bench {
namespace {

std::vector<ServiceQuery> ZipfIntervalQueries(uint32_t cardinality,
                                              uint32_t count, uint64_t seed) {
  // Interval midpoints follow the column's Zipf skew, so some bitmaps are
  // far more popular than others — the regime where a shared cache beats
  // per-worker exclusive pools.
  Rng rng(seed);
  ZipfDistribution zipf(cardinality, 1.0, &rng);
  std::vector<ServiceQuery> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t lo = zipf.Sample(&rng);
    const uint32_t width =
        static_cast<uint32_t>(rng.UniformInt(0, cardinality / 8));
    const uint32_t hi = std::min(lo + width, cardinality - 1);
    queries.push_back(ServiceQuery::Interval(IntervalQuery{lo, hi, false}));
  }
  return queries;
}

struct RunResult {
  double qps = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
};

RunResult RunOnce(const BitmapIndex& index,
                  const std::vector<ServiceQuery>& queries,
                  uint32_t num_workers) {
  ServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = 128;
  options.cache_shards = 8;
  // Pool far smaller than the index working set, so the miss stream (and
  // its modeled latency) persists; only the Zipf-popular bitmaps stay hot.
  options.buffer_pool_bytes = 256 * 1024;
  options.io_latency_scale = 0.25;
  QueryService service(&index, options);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const ServiceQuery& q : queries) futures.push_back(service.Submit(q));
  for (auto& f : futures) f.get();
  const auto t1 = std::chrono::steady_clock::now();

  const double wall = std::chrono::duration<double>(t1 - t0).count();
  ServiceStats stats = service.Stats();
  RunResult r;
  r.qps = static_cast<double>(queries.size()) / wall;
  r.p99_ms = stats.latency.p99() * 1e3;
  r.hit_rate = stats.CacheHitRate();
  return r;
}

void Run(const BenchArgs& args) {
  ColumnSpec spec;
  spec.rows = args.quick ? 50'000 : args.rows / 5;  // default 200k rows
  spec.cardinality = args.cardinality * 2;          // default C=100
  spec.zipf_z = 1.0;
  spec.seed = args.seed;
  const Column column = GenerateZipfColumn(spec);
  const uint32_t num_queries = args.quick ? 60 : 160;

  struct EncodingCase {
    const char* name;
    EncodingKind kind;
  };
  const EncodingCase cases[] = {
      {"equality", EncodingKind::kEquality},
      {"range", EncodingKind::kRange},
      {"interval", EncodingKind::kInterval},
  };
  const uint32_t worker_counts[] = {1, 2, 4, 8};

  std::printf("# server_throughput: rows=%llu C=%u queries=%u "
              "(Zipf interval workload, io_latency_scale=0.25)\n",
              static_cast<unsigned long long>(spec.rows), spec.cardinality,
              num_queries);
  TablePrinter table({"encoding", "workers", "queries/s", "p99_ms",
                      "hit_rate", "speedup_vs_1w"});
  for (const EncodingCase& c : cases) {
    IndexConfig config;
    config.encoding = c.kind;
    const BitmapIndex index = BuildIndex(column, config).value();
    const std::vector<ServiceQuery> queries =
        ZipfIntervalQueries(spec.cardinality, num_queries, args.seed + 1);
    double qps_1w = 0.0;
    for (uint32_t workers : worker_counts) {
      const RunResult r = RunOnce(index, queries, workers);
      if (workers == 1) qps_1w = r.qps;
      table.AddRow({c.name, std::to_string(workers), FormatDouble(r.qps, 1),
                    FormatDouble(r.p99_ms, 2), FormatDouble(r.hit_rate, 3),
                    FormatDouble(qps_1w > 0 ? r.qps / qps_1w : 0.0, 2)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::Run(bix::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
