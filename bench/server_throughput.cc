// Query-service scaling bench: queries/sec and tail latency vs worker
// count for the three single-component encodings, over a Zipf-skewed
// interval workload. Cache misses sleep their modeled DiskModel latency
// (io_latency_scale), so throughput reflects the system the paper models —
// workers overlap disk waits, and the shared sharded cache turns popular
// bitmaps into latency-free hits across queries. The interesting
// comparison is 4 workers vs 1 on the same workload (>2x is shared-cache
// scaling at work, since a single core can overlap simulated I/O but not
// real CPU).
//
// A second table sweeps *offered load* open-loop (arrivals on a fixed
// schedule, decoupled from completions) at multiples of the measured
// closed-loop capacity, comparing goodput — queries answered OK within a
// fixed latency budget, per second — with the deadline + brownout-shedding
// stack on vs off. The point of section 11: past saturation, a service
// that sheds hopeless work holds its goodput, while one that queues
// everything collapses into useless late answers.
//
//   server_throughput [--rows=N] [--cardinality=C] [--seed=S] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "server/query_service.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/zipf.h"

namespace bix {
namespace bench {
namespace {

std::vector<ServiceQuery> ZipfIntervalQueries(uint32_t cardinality,
                                              uint32_t count, uint64_t seed) {
  // Interval midpoints follow the column's Zipf skew, so some bitmaps are
  // far more popular than others — the regime where a shared cache beats
  // per-worker exclusive pools.
  Rng rng(seed);
  ZipfDistribution zipf(cardinality, 1.0, &rng);
  std::vector<ServiceQuery> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t lo = zipf.Sample(&rng);
    const uint32_t width =
        static_cast<uint32_t>(rng.UniformInt(0, cardinality / 8));
    const uint32_t hi = std::min(lo + width, cardinality - 1);
    queries.push_back(ServiceQuery::Interval(IntervalQuery{lo, hi, false}));
  }
  return queries;
}

struct RunResult {
  double qps = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
};

RunResult RunOnce(const BitmapIndex& index,
                  const std::vector<ServiceQuery>& queries,
                  uint32_t num_workers, bool traced = false) {
  ServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = 128;
  options.cache_shards = 8;
  // Pool far smaller than the index working set, so the miss stream (and
  // its modeled latency) persists; only the Zipf-popular bitmaps stay hot.
  options.buffer_pool_bytes = 256 * 1024;
  options.io_latency_scale = 0.25;
  QueryService service(&index, options);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const ServiceQuery& q : queries) {
    ServiceQuery submitted = q;
    if (traced) submitted.WithTrace();
    futures.push_back(service.Submit(std::move(submitted)));
  }
  for (auto& f : futures) f.get();
  const auto t1 = std::chrono::steady_clock::now();

  const double wall = std::chrono::duration<double>(t1 - t0).count();
  ServiceStats stats = service.Stats();
  RunResult r;
  r.qps = static_cast<double>(queries.size()) / wall;
  r.p99_ms = stats.latency.p99() * 1e3;
  r.hit_rate = stats.CacheHitRate();
  return r;
}

struct GoodputResult {
  double goodput_qps = 0.0;  // OK answers within the budget, per second
  double ok_fraction = 0.0;  // of all offered queries
  uint64_t shed = 0;         // shed in queue (deadline/brownout)
  uint64_t rejected = 0;     // admission-control rejections
};

// Open-loop run: `count` queries arrive on a fixed schedule at
// `offered_qps` regardless of completions (TrySubmit, so overload hits
// admission control instead of queueing unboundedly). `budget_seconds` is
// the per-query latency SLO; with `use_deadlines` each query carries it as
// a real deadline and the brownout breaker is armed, without, the service
// runs blind and the SLO is only applied after the fact when scoring.
GoodputResult RunOpenLoop(const BitmapIndex& index,
                          const std::vector<ServiceQuery>& pool,
                          uint32_t count, double offered_qps,
                          double budget_seconds, bool use_deadlines) {
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 128;
  options.cache_shards = 8;
  options.buffer_pool_bytes = 256 * 1024;
  options.io_latency_scale = 0.25;
  options.brownout.enabled = use_deadlines;
  QueryService service(&index, options);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(i) /
                                               offered_qps)));
    ServiceQuery q = pool[i % pool.size()];
    if (use_deadlines) q.WithTimeout(budget_seconds);
    futures.push_back(service.TrySubmit(std::move(q)));
  }
  uint64_t ok_within = 0;
  for (auto& f : futures) {
    const QueryResult r = f.get();
    if (r.status.ok() && r.metrics.total_seconds() <= budget_seconds) {
      ++ok_within;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ServiceStats stats = service.Stats();
  GoodputResult g;
  g.goodput_qps = static_cast<double>(ok_within) / wall;
  g.ok_fraction = static_cast<double>(ok_within) / static_cast<double>(count);
  g.shed = stats.shed_in_queue;
  g.rejected = stats.rejected_overload;
  return g;
}

void RunGoodputSweep(const BenchArgs& args, const Column& column,
                     uint32_t cardinality) {
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  const BitmapIndex index = BuildIndex(column, config).value();
  const std::vector<ServiceQuery> pool =
      ZipfIntervalQueries(cardinality, 64, args.seed + 2);

  // Closed-loop capacity at 4 workers anchors the offered-load multiples.
  const double capacity = RunOnce(index, pool, 4).qps;
  const double budget = 25e-3;
  const uint32_t count = args.quick ? 120 : 400;

  std::printf("\n# goodput vs offered load: capacity=%.0f q/s (closed-loop, "
              "4 workers), budget=%.0fms, %u open-loop queries per cell\n",
              capacity, budget * 1e3, count);
  TablePrinter table({"offered/capacity", "mode", "goodput_q/s",
                      "ok_within_budget", "shed", "rejected"});
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    const double offered = capacity * mult;
    for (bool use_deadlines : {false, true}) {
      const GoodputResult g =
          RunOpenLoop(index, pool, count, offered, budget, use_deadlines);
      table.AddRow({FormatDouble(mult, 1),
                    use_deadlines ? "deadline+shed" : "no-deadline",
                    FormatDouble(g.goodput_qps, 1),
                    FormatDouble(g.ok_fraction, 3), std::to_string(g.shed),
                    std::to_string(g.rejected)});
    }
  }
  table.Print();
}

// Tracing overhead guard (DESIGN.md section 13): the identical closed-loop
// workload with per-query tracing off vs on. The untraced path constructs
// no sink and opens no spans, so its column is the baseline the <2%
// regression budget is measured against; the traced column prices the full
// span tree (every fetch, kernel, and stage).
void RunTracingOverhead(const Column& column, uint32_t cardinality,
                        const BenchArgs& args) {
  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  const BitmapIndex index = BuildIndex(column, config).value();
  const std::vector<ServiceQuery> queries =
      ZipfIntervalQueries(cardinality, args.quick ? 60 : 160, args.seed + 3);

  std::printf("\n# tracing overhead: same workload, 4 workers, "
              "WithTrace() off vs on\n");
  TablePrinter table({"mode", "queries/s", "p99_ms", "vs_untraced"});
  double untraced_qps = 0.0;
  for (bool traced : {false, true}) {
    const RunResult r = RunOnce(index, queries, 4, traced);
    if (!traced) untraced_qps = r.qps;
    table.AddRow({traced ? "traced" : "untraced", FormatDouble(r.qps, 1),
                  FormatDouble(r.p99_ms, 2),
                  FormatDouble(untraced_qps > 0 ? r.qps / untraced_qps : 0.0,
                               3)});
  }
  table.Print();
}

void Run(const BenchArgs& args) {
  ColumnSpec spec;
  spec.rows = args.quick ? 50'000 : args.rows / 5;  // default 200k rows
  spec.cardinality = args.cardinality * 2;          // default C=100
  spec.zipf_z = 1.0;
  spec.seed = args.seed;
  const Column column = GenerateZipfColumn(spec);
  const uint32_t num_queries = args.quick ? 60 : 160;

  struct EncodingCase {
    const char* name;
    EncodingKind kind;
  };
  const EncodingCase cases[] = {
      {"equality", EncodingKind::kEquality},
      {"range", EncodingKind::kRange},
      {"interval", EncodingKind::kInterval},
  };
  const uint32_t worker_counts[] = {1, 2, 4, 8};

  std::printf("# server_throughput: rows=%llu C=%u queries=%u "
              "(Zipf interval workload, io_latency_scale=0.25)\n",
              static_cast<unsigned long long>(spec.rows), spec.cardinality,
              num_queries);
  TablePrinter table({"encoding", "workers", "queries/s", "p99_ms",
                      "hit_rate", "speedup_vs_1w"});
  for (const EncodingCase& c : cases) {
    IndexConfig config;
    config.encoding = c.kind;
    const BitmapIndex index = BuildIndex(column, config).value();
    const std::vector<ServiceQuery> queries =
        ZipfIntervalQueries(spec.cardinality, num_queries, args.seed + 1);
    double qps_1w = 0.0;
    for (uint32_t workers : worker_counts) {
      const RunResult r = RunOnce(index, queries, workers);
      if (workers == 1) qps_1w = r.qps;
      table.AddRow({c.name, std::to_string(workers), FormatDouble(r.qps, 1),
                    FormatDouble(r.p99_ms, 2), FormatDouble(r.hit_rate, 3),
                    FormatDouble(qps_1w > 0 ? r.qps / qps_1w : 0.0, 2)});
    }
  }
  table.Print();

  RunTracingOverhead(column, spec.cardinality, args);
  RunGoodputSweep(args, column, spec.cardinality);
}

}  // namespace
}  // namespace bench
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::Run(bix::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
