// Reproduces paper Table 1 (optimality of the encoding schemes for the
// query classes EQ, 1RQ, 2RQ, RQ — Theorems 3.1 and 4.1), mechanically:
//   x  cells ("not optimal")  -> exhibit a dominating complete scheme
//                                (cost-model dominance or exhaustive search)
//   ok cells ("optimal")      -> exhaustive search over all complete
//                                abstract schemes finds no dominator
//                                (verified for small C; see notes)
//
//   $ ./table1_optimality [--quick]

#include <cstdio>

#include "bench_support.h"
#include "theory/cost_model.h"
#include "theory/optimality.h"

namespace bix {
namespace {

const char* ClassLabel(QueryClass q) { return QueryClassName(q); }

// Verifies a "not optimal" claim by exhibiting a dominator among the other
// implemented schemes (cost model) for every C in [lo, hi].
bool VerifyDominatedEverywhere(EncodingKind victim, QueryClass q, uint32_t lo,
                               uint32_t hi) {
  for (uint32_t c = lo; c <= hi; ++c) {
    if (EnumerateQueries(q, c).empty()) continue;
    bool dominated = false;
    for (EncodingKind other : AllEncodingKinds()) {
      if (other == victim) continue;
      if (Dominates(ComputeCost(other, c, q), ComputeCost(victim, c, q))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

// Verifies an "optimal" claim by exhaustive search for small C.
bool VerifyNoDominatorSmallC(EncodingKind kind, QueryClass q, uint32_t lo,
                             uint32_t hi) {
  for (uint32_t c = lo; c <= hi; ++c) {
    if (EnumerateQueries(q, c).empty()) continue;
    AbstractScheme target = AbstractFromEncoding(kind, c);
    if (FindDominatingScheme(target, q).has_value()) return false;
  }
  return true;
}

void Run(bool quick) {
  std::printf("Table 1: optimality of encoding schemes "
              "(mechanical verification)\n\n");
  bench::TablePrinter table({"class", "E", "R", "I"});

  const uint32_t search_hi = quick ? 5 : 6;

  // EQ row.
  {
    const bool e_opt = VerifyNoDominatorSmallC(EncodingKind::kEquality,
                                               QueryClass::kEq, 3, 5);
    const bool r_small = VerifyNoDominatorSmallC(EncodingKind::kRange,
                                                 QueryClass::kEq, 3, 5);
    const bool r_big_dominated =
        FindDominatingScheme(AbstractFromEncoding(EncodingKind::kRange, 6),
                             QueryClass::kEq)
            .has_value();
    // I for EQ: pair-intersection scheme dominates at C >= 14.
    AbstractScheme interval14 =
        AbstractFromEncoding(EncodingKind::kInterval, 14);
    AbstractScheme pair14 = PairIntersectionScheme(14);
    const bool i_dominated_at_14 =
        IsComplete(pair14) && pair14.space() < interval14.space() &&
        ExpectedScans(pair14, QueryClass::kEq) <=
            ExpectedScans(interval14, QueryClass::kEq) + 1e-12;
    table.AddRow({"EQ", e_opt ? "ok (search C<=5)" : "VIOLATED",
                  (r_small && r_big_dominated)
                      ? "ok iff C<=5 (search)"
                      : "VIOLATED",
                  i_dominated_at_14 ? "x if C>=14 (pair scheme)"
                                    : "VIOLATED"});
  }
  // 1RQ row.
  {
    const bool e_dom = VerifyDominatedEverywhere(EncodingKind::kEquality,
                                                 QueryClass::k1Rq, 4, 40);
    const bool r_opt = VerifyNoDominatorSmallC(EncodingKind::kRange,
                                               QueryClass::k1Rq, 3, 5);
    const bool i_c4 = VerifyNoDominatorSmallC(EncodingKind::kInterval,
                                              QueryClass::k1Rq, 4, 4);
    const bool i_c6 = VerifyNoDominatorSmallC(EncodingKind::kInterval,
                                              QueryClass::k1Rq, 6, search_hi);
    const bool i_c5_deviates =
        FindDominatingScheme(
            AbstractFromEncoding(EncodingKind::kInterval, 5),
            QueryClass::k1Rq)
            .has_value();
    std::string i_cell = (i_c4 && i_c6)
                             ? "ok (search C=4,6)"
                             : "VIOLATED";
    if (i_c5_deviates) i_cell += " [C=5 deviates; see notes]";
    table.AddRow({"1RQ", e_dom ? "x (R dominates)" : "VIOLATED",
                  r_opt ? "ok (search C<=5)" : "VIOLATED", i_cell});
  }
  // 2RQ row.
  {
    const bool e_dom = VerifyDominatedEverywhere(EncodingKind::kEquality,
                                                 QueryClass::k2Rq, 5, 40);
    const bool r_dom = VerifyDominatedEverywhere(EncodingKind::kRange,
                                                 QueryClass::k2Rq, 5, 40);
    const bool i_opt = VerifyNoDominatorSmallC(EncodingKind::kInterval,
                                               QueryClass::k2Rq, 4, search_hi);
    table.AddRow({"2RQ", e_dom ? "x (R dominates)" : "VIOLATED",
                  r_dom ? "x (I dominates)" : "VIOLATED",
                  i_opt ? "ok (search C<=6)" : "VIOLATED"});
  }
  // RQ row.
  {
    const bool e_dom = VerifyDominatedEverywhere(EncodingKind::kEquality,
                                                 QueryClass::kRq, 5, 40);
    const bool r_opt = VerifyNoDominatorSmallC(EncodingKind::kRange,
                                               QueryClass::kRq, 4, 5);
    const bool i_c4 = VerifyNoDominatorSmallC(EncodingKind::kInterval,
                                              QueryClass::kRq, 4, 4);
    const bool i_c6 = VerifyNoDominatorSmallC(EncodingKind::kInterval,
                                              QueryClass::kRq, 6, search_hi);
    const bool i_c5_deviates =
        FindDominatingScheme(
            AbstractFromEncoding(EncodingKind::kInterval, 5), QueryClass::kRq)
            .has_value();
    std::string i_cell =
        (i_c4 && i_c6) ? "ok (search C=4,6)" : "VIOLATED";
    if (i_c5_deviates) i_cell += " [C=5 deviates; see notes]";
    table.AddRow({"RQ", e_dom ? "x (R dominates)" : "VIOLATED",
                  r_opt ? "ok (search C<=5)" : "VIOLATED", i_cell});
  }
  table.Print();

  std::printf(
      "\nNotes:\n"
      " * 'ok (search ...)': exhaustive search over all complete abstract\n"
      "   schemes (up to bitmap complementation) found no dominator in the\n"
      "   stated cardinality range; larger C is out of exhaustive reach.\n"
      " * I/EQ at C >= 14: the pair-intersection scheme (k bitmaps, every\n"
      "   value a distinct pairwise intersection, k(k-1)/2 >= C) is\n"
      "   complete, answers every equality in 2 scans, and uses fewer\n"
      "   bitmaps than interval encoding -- reproducing Theorem 4.1(1).\n"
      " * I/1RQ at C = 5: under our exact expected-scan model a 3-bitmap\n"
      "   scheme {{0},{0,1,2},{0,1,3}} averages 1.50 scans vs interval's\n"
      "   1.67 -- a boundary deviation from Theorem 4.1(2) discussed in\n"
      "   EXPERIMENTS.md (the paper's proof model is in the unavailable\n"
      "   tech report [CI98a]).\n");

  // Expected-scan reference table (exact, from the implementation).
  std::printf("\nExpected scans per query class (1-component, C=50):\n");
  bench::TablePrinter scans({"class", "E", "R", "I", "ER", "O", "EI", "EI*"});
  for (QueryClass q : {QueryClass::kEq, QueryClass::k1Rq, QueryClass::k2Rq,
                       QueryClass::kRq}) {
    std::vector<std::string> row = {ClassLabel(q)};
    for (EncodingKind enc : AllEncodingKinds()) {
      row.push_back(
          bench::FormatDouble(ComputeCost(enc, 50, q).expected_scans, 3));
    }
    scans.AddRow(std::move(row));
  }
  scans.Print();

  std::printf("\nStored bitmaps (1-component, C=50): ");
  for (EncodingKind enc : AllEncodingKinds()) {
    std::printf("%s=%llu  ", EncodingKindName(enc),
                static_cast<unsigned long long>(
                    ComputeCost(enc, 50, QueryClass::kEq).space_bitmaps));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  bix::Run(args.quick);
  return 0;
}
