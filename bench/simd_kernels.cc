// Per-tier kernel throughput: every word kernel (and the Roaring array
// intersection) measured under each tier this CPU can run — scalar, AVX2,
// AVX-512 — at the paper-scale 6M-row bitmap size, reported as GB/s and
// bytes/cycle. This is the step-function evidence for the vectorized tier
// and the source of the BENCH_simd.json CI artifact: the smoke gate fails
// if any vector tier loses to scalar on any kernel at this size.
//
//   $ ./simd_kernels [--rows=N] [--quick] [--json=PATH]
//
// Rows default to 6,000,000 (bits per bitmap operand); --quick keeps that
// size but trims repetitions for smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "bench_support.h"
#include "bitvector/kernels.h"
#include "util/rng.h"

namespace bix {
namespace {

using kernels::Ops;
using kernels::Tier;

inline uint64_t Cycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return 0;  // bytes_per_cycle reports 0 off x86; GB/s still measured
#endif
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    if (kernels::OpsForTier(t) != nullptr) tiers.push_back(t);
  }
  return tiers;
}

struct KernelPoint {
  std::string kernel;
  Tier tier = Tier::kScalar;
  double gb_per_s = 0.0;
  double bytes_per_cycle = 0.0;
  double speedup_vs_scalar = 1.0;
};

struct Buffers {
  std::vector<uint64_t> dst, a, b, c, d;
  std::vector<uint16_t> small_set, large_set, out_set;

  explicit Buffers(size_t n) {
    Rng rng(7);
    const auto fill = [&](std::vector<uint64_t>* v) {
      v->resize(n);
      for (uint64_t& w : *v) w = rng.engine()();
    };
    fill(&dst);
    fill(&a);
    fill(&b);
    fill(&c);
    fill(&d);
    // Lopsided sorted sets inside one Roaring chunk: a 1.5k-probe small
    // side against a 60k large side (the gallop/window shape).
    for (uint32_t v = 0; v < 65536; ++v) {
      if (rng.Bernoulli(60000.0 / 65536.0)) {
        large_set.push_back(static_cast<uint16_t>(v));
      }
    }
    for (size_t i = 0; i < large_set.size(); i += 40) {
      small_set.push_back(large_set[i]);
    }
    out_set.resize(small_set.size());
  }
};

// One kernel under one tier: `pass` runs the kernel once over the working
// set, `bytes` is the memory traffic of that pass (reads + writes). The
// reps are split into chunks and the fastest chunk is reported — these
// kernels are deterministic, so the minimum is the least-perturbed
// observation (frequency ramps and scheduler noise only ever add time).
template <typename Pass>
KernelPoint Measure(const std::string& kernel, Tier tier, uint64_t bytes,
                    int reps, Pass pass) {
  constexpr int kChunks = 5;
  const int chunk_reps = std::max(1, reps / kChunks);
  pass();  // warm
  double best_secs = 0.0;
  double best_cycles = 0.0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = Cycles();
    for (int r = 0; r < chunk_reps; ++r) pass();
    const uint64_t cycles = Cycles() - c0;
    const double secs = Seconds(t0);
    if (chunk == 0 || secs < best_secs) best_secs = secs;
    if (chunk == 0 || cycles < best_cycles) {
      best_cycles = static_cast<double>(cycles);
    }
  }
  KernelPoint p;
  p.kernel = kernel;
  p.tier = tier;
  const double total = static_cast<double>(bytes) * chunk_reps;
  p.gb_per_s = best_secs > 0.0 ? total / best_secs / 1e9 : 0.0;
  p.bytes_per_cycle = best_cycles > 0 ? total / best_cycles : 0.0;
  return p;
}

void Run(const bench::BenchArgs& args) {
  const size_t n = (args.rows + 63) / 64;  // words per operand
  const uint64_t wb = n * sizeof(uint64_t);
  const int reps = args.quick ? 40 : 200;
  std::printf("SIMD kernel tiers at %llu rows (%zu words/operand), "
              "native tier: %s\n\n",
              static_cast<unsigned long long>(args.rows), n,
              kernels::TierName(kernels::MaxSupportedTier()));

  Buffers buf(n);
  std::vector<KernelPoint> points;
  for (Tier t : SupportedTiers()) {
    const Ops& ops = *kernels::OpsForTier(t);
    uint64_t* dst = buf.dst.data();
    const uint64_t* a = buf.a.data();
    const uint64_t* b = buf.b.data();
    const uint64_t* srcs[4] = {buf.a.data(), buf.b.data(), buf.c.data(),
                               buf.d.data()};
    uint64_t sink = 0;
    const auto add = [&](KernelPoint p) { points.push_back(std::move(p)); };
    // Pairwise: read dst + src, write dst.
    add(Measure("and_words", t, 3 * wb, reps,
                [&] { ops.and_words(dst, a, n); }));
    add(Measure("or_words", t, 3 * wb, reps,
                [&] { ops.or_words(dst, a, n); }));
    add(Measure("xor_words", t, 3 * wb, reps,
                [&] { ops.xor_words(dst, a, n); }));
    add(Measure("andnot_words", t, 3 * wb, reps,
                [&] { ops.andnot_words(dst, a, n); }));
    add(Measure("not_words", t, 2 * wb, reps,
                [&] { ops.not_words(dst, a, n); }));
    // k=4 folds: read 4 operands, write dst.
    add(Measure("and_many_k4", t, 5 * wb, reps,
                [&] { ops.and_many(srcs, 4, dst, n); }));
    add(Measure("or_many_k4", t, 5 * wb, reps,
                [&] { ops.or_many(srcs, 4, dst, n); }));
    add(Measure("xor_many_k4", t, 5 * wb, reps,
                [&] { ops.xor_many(srcs, 4, dst, n); }));
    // Popcounts.
    add(Measure("count", t, wb, reps, [&] { sink += ops.count(a, n); }));
    add(Measure("and_count", t, 2 * wb, reps,
                [&] { sink += ops.and_count(a, b, n); }));
    add(Measure("and_with_count", t, 3 * wb, reps,
                [&] { sink += ops.and_with_count(dst, a, n); }));
    // Array-container intersection: the lopsided in-chunk shape, repeated
    // to cover comparable traffic.
    const uint64_t set_bytes =
        (buf.small_set.size() + buf.large_set.size()) * sizeof(uint16_t);
    const int set_reps = reps * 4;
    add(Measure("intersect_u16", t, set_bytes, set_reps, [&] {
      sink += ops.intersect_u16(buf.small_set.data(), buf.small_set.size(),
                                buf.large_set.data(), buf.large_set.size(),
                                buf.out_set.data());
    }));
  }

  // Speedups vs the scalar row of the same kernel.
  for (KernelPoint& p : points) {
    if (p.tier == Tier::kScalar) continue;
    for (const KernelPoint& s : points) {
      if (s.tier == Tier::kScalar && s.kernel == p.kernel &&
          s.gb_per_s > 0.0) {
        p.speedup_vs_scalar = p.gb_per_s / s.gb_per_s;
      }
    }
  }

  bench::TablePrinter table(
      {"kernel", "tier", "GB/s", "bytes/cycle", "vs scalar"});
  for (const KernelPoint& p : points) {
    table.AddRow({p.kernel, kernels::TierName(p.tier),
                  bench::FormatDouble(p.gb_per_s, 1),
                  bench::FormatDouble(p.bytes_per_cycle, 2),
                  p.tier == Tier::kScalar
                      ? "1.00"
                      : bench::FormatDouble(p.speedup_vs_scalar, 2)});
  }
  table.Print();
  std::printf("\nExpected: every vector tier at or above scalar on every\n"
              "kernel (the CI gate enforces this); the largest steps on\n"
              "count/and_count (nibble-LUT popcount vs word popcount) and\n"
              "the k-ary folds (register accumulator vs blocked passes).\n");

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"simd_kernels\",\n  \"rows\": %llu,\n"
                 "  \"native_tier\": \"%s\",\n  \"series\": [\n",
                 static_cast<unsigned long long>(args.rows),
                 kernels::TierName(kernels::MaxSupportedTier()));
    for (size_t i = 0; i < points.size(); ++i) {
      const KernelPoint& p = points[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"tier\": \"%s\", "
                   "\"gb_per_s\": %.2f, \"bytes_per_cycle\": %.3f, "
                   "\"speedup_vs_scalar\": %.3f}%s\n",
                   p.kernel.c_str(), kernels::TierName(p.tier), p.gb_per_s,
                   p.bytes_per_cycle, p.speedup_vs_scalar,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu series points)\n", args.json_path.c_str(),
                points.size());
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  // Default to the 6M-row operand size the acceptance gate measures;
  // --rows still overrides, --quick trims reps but keeps the size.
  bool rows_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows_given = true;
  }
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (!rows_given) args.rows = 6'000'000;
  bix::Run(args);
  return 0;
}
