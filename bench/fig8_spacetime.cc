// Reproduces paper Figure 8: space-time tradeoff of the encoding schemes
// per query set (C = 50, z = 1). For each of the paper's 8 query sets
// (N_int x N_equ) and each (encoding, n, compressed?) configuration, prints
// the index size and the average query processing time (simulated disk I/O
// + measured CPU, component-wise evaluation, 11 MB buffer pool, cold pool
// per query).
//
// Expected shape (paper): interval encoding offers the best space-time
// tradeoff except when N_equ = N_int, where equality encoding wins.
//
//   $ ./fig8_spacetime [--rows=N] [--cardinality=C] [--seed=S] [--quick]

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "index/reorder.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                   .zipf_z = 1.0, .seed = args.seed});
  std::vector<QuerySet> sets = GeneratePaperQuerySets(c, args.seed + 1);
  const std::vector<uint32_t> ns =
      args.quick ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 3, 4, 6};

  std::printf("Figure 8: space-time tradeoff per query set "
              "(C=%u, z=1, rows=%llu, 11MB pool, component-wise)\n\n",
              c, static_cast<unsigned long long>(args.rows));

  // Build all configurations once; reuse across the 8 query sets.
  struct Config {
    std::string label;
    BitmapIndex index;
  };
  // Third tier alongside the paper's binary choice: Roaring containers
  // ("roa"), which evaluate on the compressed form. Fourth tier: BBC over
  // Gray-code row reordering ("reo", DESIGN.md section 18) — same codec as
  // "cmp" but the rows are clustered before the bitmaps are built, so the
  // runs are longer and the permutation maps results back to original
  // RIDs.
  struct Tier {
    StorageCodec codec;
    ReorderStrategy reorder;
    const char* tag;
  };
  const std::vector<Tier> tiers = {
      {StorageCodec::kVerbatim, ReorderStrategy::kNone, "unc"},
      {StorageCodec::kBbc, ReorderStrategy::kNone, "cmp"},
      {StorageCodec::kRoaring, ReorderStrategy::kNone, "roa"},
      {StorageCodec::kBbc, ReorderStrategy::kGrayCode, "reo"}};
  std::vector<Config> configs;
  for (EncodingKind enc : BasicEncodingKinds()) {
    for (uint32_t n : ns) {
      Result<Decomposition> d = ChooseSpaceOptimalBases(c, n, enc);
      if (!d.ok()) continue;
      for (const auto& tier : tiers) {
        std::string label = std::string(tier.tag) + " " +
                            EncodingKindName(enc) + " n=" + std::to_string(n);
        std::vector<uint32_t> order =
            ComputeRowOrder(col, d.value(), tier.reorder);
        BitmapIndex index = BitmapIndex::Build(ApplyRowOrder(col, order),
                                               d.value(), enc, tier.codec);
        index.SetRowOrder(std::move(order));
        configs.push_back({std::move(label), std::move(index)});
      }
    }
  }

  for (const QuerySet& set : sets) {
    std::printf("--- query set %s ---\n", set.spec.Label().c_str());
    bench::TablePrinter table({"config", "space(MB)", "time(ms)", "io(ms)",
                               "decode(ms)", "cpu(ms)", "scans"});
    for (const Config& cfg : configs) {
      bench::QueryRunCost cost = bench::RunQueries(cfg.index, set.queries);
      table.AddRow(
          {cfg.label,
           bench::FormatDouble(
               static_cast<double>(cfg.index.TotalStoredBytes()) / (1 << 20),
               2),
           bench::FormatDouble(cost.avg_seconds * 1e3, 1),
           bench::FormatDouble(cost.avg_io_seconds * 1e3, 1),
           bench::FormatDouble(cost.avg_decode_seconds * 1e3, 1),
           bench::FormatDouble(cost.avg_cpu_seconds * 1e3, 1),
           bench::FormatDouble(cost.avg_scans, 1)});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
