// Design-space exploration in the paper's [CI98b] framework: for every
// encoding scheme and component count, the exact (stored bitmaps, expected
// scans) point under both space-optimal and time-optimal base selection —
// the analytic "knee curves" behind Figures 6 and 8, computed from the cost
// model alone (no data needed).
//
//   $ ./model_spacetime [--cardinality=C] [--quick]

#include <cstdio>

#include "bench_support.h"
#include "theory/base_optimizer.h"
#include "util/math.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  const QueryClassMix mix{1.0, 1.0, 1.0};
  const uint32_t max_n = args.quick ? 2 : std::min<uint32_t>(CeilLog2(c), 4);

  std::printf("Design-space model: exact space & expected scans per "
              "(encoding, n, base policy), C=%u, uniform class mix\n\n",
              c);
  bench::TablePrinter table({"encoding", "n", "policy", "bases", "bitmaps",
                             "E[scans] EQ", "E[scans] 1RQ", "E[scans] 2RQ",
                             "E[scans] mix"});
  for (EncodingKind enc : AllEncodingKinds()) {
    for (uint32_t n = 1; n <= max_n; ++n) {
      struct Policy {
        const char* name;
        Result<Decomposition> d;
      };
      Policy policies[2] = {
          {"space-opt", ChooseSpaceOptimalBases(c, n, enc)},
          {"time-opt", ChooseTimeOptimalBases(c, n, enc, mix)},
      };
      for (Policy& p : policies) {
        if (!p.d.ok()) continue;
        const Decomposition& d = p.d.value();
        table.AddRow(
            {EncodingKindName(enc), std::to_string(n), p.name, d.ToString(),
             std::to_string(TotalBitmaps(d, enc)),
             bench::FormatDouble(
                 ComputeCost(d, enc, QueryClass::kEq).expected_scans),
             bench::FormatDouble(
                 ComputeCost(d, enc, QueryClass::k1Rq).expected_scans),
             bench::FormatDouble(
                 ComputeCost(d, enc, QueryClass::k2Rq).expected_scans),
             bench::FormatDouble(MixedExpectedScans(d, enc, mix))});
      }
    }
  }
  table.Print();
  std::printf("\nReading the knees: interval encoding holds the two-scan\n"
              "bound per component at half of range encoding's bitmaps;\n"
              "time-optimal bases trade bitmaps for scans as n grows.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  bix::Run(args);
  return 0;
}
