// Ablation: compressed-domain BBC operations vs the paper's
// decode-then-operate approach. The paper's time metric includes
// decompression on every use of a compressed bitmap (Section 7); operating
// directly on the compressed form — what FastBit later made standard —
// skips that decode entirely when the inputs are run-dominated.
//
//   $ ./ablation_bbc_ops [--rows=N] [--quick]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_support.h"
#include "compress/bbc.h"
#include "compress/bbc_ops.h"
#include "util/rng.h"

namespace bix {
namespace {

Bitvector RandomBitvector(uint64_t n, double density, Rng* rng) {
  Bitvector bv(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

double TimeIt(int reps, const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

void Run(const bench::BenchArgs& args) {
  const uint64_t n = args.rows;
  const int reps = args.quick ? 5 : 20;
  std::printf("Compressed-domain BBC ops vs decode-then-operate "
              "(bits=%llu)\n\n",
              static_cast<unsigned long long>(n));
  bench::TablePrinter table({"density", "cmp ratio", "AND direct(ms)",
                             "AND via decode(ms)", "OR direct(ms)",
                             "count direct(ms)"});
  Rng rng(args.seed);
  for (double density : {0.0005, 0.005, 0.05, 0.5}) {
    Bitvector a = RandomBitvector(n, density, &rng);
    Bitvector b = RandomBitvector(n, density, &rng);
    BbcEncoded ea = BbcEncode(a), eb = BbcEncode(b);
    const double ratio =
        static_cast<double>(ea.byte_size()) / a.byte_size();

    const double direct_and = TimeIt(reps, [&] {
      BbcEncoded r = BbcAnd(ea, eb);
      (void)r;
    });
    const double decode_and = TimeIt(reps, [&] {
      Bitvector da = BbcDecodeUnchecked(ea);
      Bitvector db = BbcDecodeUnchecked(eb);
      da.AndWith(db);
      (void)da;
    });
    const double direct_or = TimeIt(reps, [&] {
      BbcEncoded r = BbcOr(ea, eb);
      (void)r;
    });
    const double direct_count = TimeIt(reps, [&] { (void)BbcCount(ea); });

    table.AddRow({bench::FormatDouble(density, 4),
                  bench::FormatDouble(ratio, 3),
                  bench::FormatDouble(direct_and * 1e3, 3),
                  bench::FormatDouble(decode_and * 1e3, 3),
                  bench::FormatDouble(direct_or * 1e3, 3),
                  bench::FormatDouble(direct_count * 1e3, 3)});
  }
  table.Print();
  std::printf("\nExpected: direct ops win on sparse (run-dominated) inputs\n"
              "and approach decode cost as density reaches 0.5.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
