#ifndef BIX_BENCH_BENCH_SUPPORT_H_
#define BIX_BENCH_BENCH_SUPPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bix {
namespace bench {

// Minimal flag parsing for the reproduction harnesses:
//   --rows=N --cardinality=C --seed=S --quick --json=PATH
// Unknown flags abort with a usage message.
struct BenchArgs {
  uint64_t rows = 1'000'000;
  uint32_t cardinality = 50;
  uint64_t seed = 42;
  bool quick = false;  // smaller sweep for smoke runs
  // When non-empty, benches that support it also write a machine-readable
  // JSON series here (the BENCH_codecs.json trajectory artifact).
  std::string json_path;

  static BenchArgs Parse(int argc, char** argv);
};

// Fixed-width table printer matching the "rows/series the paper reports"
// style: a header row, then data rows; all columns are strings.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double v, int precision = 3);

}  // namespace bench
}  // namespace bix

#include "index/bitmap_index.h"
#include "workload/query_gen.h"

namespace bix {
namespace bench {

// Average per-query cost of evaluating every membership query in `queries`
// against the index, with a cold buffer pool per query (the paper flushes
// the file-system buffer before each query, Section 7).
struct QueryRunCost {
  double avg_seconds = 0.0;  // simulated I/O + simulated decode + real CPU
  double avg_scans = 0.0;
  double avg_io_seconds = 0.0;
  double avg_decode_seconds = 0.0;
  double avg_cpu_seconds = 0.0;
};

QueryRunCost RunQueries(const BitmapIndex& index,
                        const std::vector<MembershipQuery>& queries,
                        uint64_t buffer_pool_bytes = 11ull << 20);

// Flattens the paper's query sets into one list.
std::vector<MembershipQuery> FlattenQuerySets(
    const std::vector<QuerySet>& sets);

}  // namespace bench
}  // namespace bix

#endif  // BIX_BENCH_BENCH_SUPPORT_H_
