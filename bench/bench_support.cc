#include "bench_support.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "query/executor.h"

namespace bix {
namespace bench {

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--rows=", 7) == 0) {
      args.rows = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--cardinality=", 14) == 0) {
      args.cardinality = static_cast<uint32_t>(std::strtoul(a + 14, nullptr, 10));
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      args.json_path = a + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N] [--cardinality=C] [--seed=S] "
                   "[--quick] [--json=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  if (rows_.empty()) return;
  std::vector<size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      std::string cell = rows_[r][i];
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string sep;
      for (size_t i = 0; i < widths.size(); ++i) {
        sep += std::string(widths[i], '-');
        if (i + 1 < widths.size()) sep += "  ";
      }
      std::printf("%s\n", sep.c_str());
    }
  }
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

QueryRunCost RunQueries(const BitmapIndex& index,
                        const std::vector<MembershipQuery>& queries,
                        uint64_t buffer_pool_bytes) {
  ExecutorOptions opts;
  opts.buffer_pool_bytes = buffer_pool_bytes;
  opts.strategy = EvalStrategy::kComponentWise;
  opts.cold_pool_per_query = true;
  QueryExecutor exec(&index, opts);
  for (const MembershipQuery& q : queries) {
    exec.EvaluateMembership(q.values);
  }
  const IoStats& io = exec.stats();
  QueryRunCost cost;
  const double n = static_cast<double>(queries.size());
  cost.avg_seconds = io.total_seconds() / n;
  cost.avg_scans = static_cast<double>(io.scans) / n;
  cost.avg_io_seconds = io.io_seconds / n;
  cost.avg_decode_seconds = io.decode_seconds / n;
  cost.avg_cpu_seconds = io.cpu_seconds / n;
  return cost;
}

std::vector<MembershipQuery> FlattenQuerySets(
    const std::vector<QuerySet>& sets) {
  std::vector<MembershipQuery> all;
  for (const QuerySet& set : sets) {
    all.insert(all.end(), set.queries.begin(), set.queries.end());
  }
  return all;
}

}  // namespace bench
}  // namespace bix
