// Microbenchmarks for the BBC codec: encode/decode throughput across bitmap
// densities (decode speed is the CPU component of compressed-index query
// time in the paper's experiments).

#include <benchmark/benchmark.h>

#include "compress/bbc.h"
#include "util/rng.h"

namespace bix {
namespace {

Bitvector MakeRandom(uint64_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  Bitvector bv(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

// density permille as the benchmark argument.
void BM_BbcEncode(benchmark::State& state) {
  const double density = state.range(0) / 1000.0;
  Bitvector bv = MakeRandom(1 << 20, density, 1);
  for (auto _ : state) {
    BbcEncoded enc = BbcEncode(bv);
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(state.iterations() * (bv.size() / 8));
  state.counters["ratio"] =
      static_cast<double>(BbcEncode(bv).data.size()) / (bv.size() / 8);
}
BENCHMARK(BM_BbcEncode)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void BM_BbcDecode(benchmark::State& state) {
  const double density = state.range(0) / 1000.0;
  Bitvector bv = MakeRandom(1 << 20, density, 1);
  BbcEncoded enc = BbcEncode(bv);
  for (auto _ : state) {
    Bitvector out = BbcDecodeUnchecked(enc);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * (bv.size() / 8));
}
BENCHMARK(BM_BbcDecode)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void BM_BbcEncodeLongRuns(benchmark::State& state) {
  // Range-encoded bitmaps: one long run of ones then zeros.
  Bitvector bv(1 << 20);
  for (uint64_t i = 0; i < (1u << 19); ++i) bv.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BbcEncode(bv));
  }
  state.SetBytesProcessed(state.iterations() * (bv.size() / 8));
}
BENCHMARK(BM_BbcEncodeLongRuns);

}  // namespace
}  // namespace bix

BENCHMARK_MAIN();
