// Reproduces paper Figure 6: space-efficiency and compressibility of the
// encoding schemes as a function of the number of index components n
// (C = 50, z = 1). Three ratios per (encoding, n):
//   (a) uncompressed index size / uncompressed 1-component equality index
//   (b) compressed index size   / its own uncompressed size
//   (c) compressed index size   / uncompressed 1-component equality index
// For each (encoding, n) the base sequence minimizing stored bitmaps is
// used (the paper plots the best-space index per point).
//
//   $ ./fig6_space [--rows=N] [--cardinality=C] [--seed=S] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "util/math.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  const uint32_t max_n = args.quick ? 3 : CeilLog2(c);
  Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                   .zipf_z = 1.0, .seed = args.seed});
  // Base case: uncompressed one-component equality index.
  const uint64_t base_bytes =
      BitmapIndex::Build(col, Decomposition::SingleComponent(c),
                         EncodingKind::kEquality, false)
          .TotalStoredBytes();

  std::printf("Figure 6: space-efficiency and compressibility "
              "(C=%u, z=1, rows=%llu)\n",
              c, static_cast<unsigned long long>(args.rows));
  std::printf("base: uncompressed 1-component equality index = %.2f MB\n\n",
              static_cast<double>(base_bytes) / (1 << 20));

  bench::TablePrinter table({"encoding", "n", "bases", "bitmaps",
                             "(a) unc/baseE", "(b) cmp/unc",
                             "(c) cmp/baseE"});
  for (EncodingKind enc : AllEncodingKinds()) {
    for (uint32_t n = 1; n <= max_n; ++n) {
      Result<Decomposition> d = ChooseSpaceOptimalBases(c, n, enc);
      if (!d.ok()) continue;
      BitmapIndex unc = BitmapIndex::Build(col, d.value(), enc, false);
      BitmapIndex cmp = BitmapIndex::Build(col, d.value(), enc, true);
      table.AddRow({EncodingKindName(enc), std::to_string(n),
                    d.value().ToString(),
                    std::to_string(unc.BitmapCount()),
                    bench::FormatDouble(
                        static_cast<double>(unc.TotalStoredBytes()) /
                        static_cast<double>(base_bytes)),
                    bench::FormatDouble(
                        static_cast<double>(cmp.TotalStoredBytes()) /
                        static_cast<double>(unc.TotalStoredBytes())),
                    bench::FormatDouble(
                        static_cast<double>(cmp.TotalStoredBytes()) /
                        static_cast<double>(base_bytes))});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): (a) I < R < E at every n; (b) E compresses"
      "\nbest and I worst; (c) I generally smallest compressed too.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
