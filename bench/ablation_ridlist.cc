// Ablation: bitmap indexes vs the conventional RID-list organization the
// paper's introduction argues against for low-cardinality attributes.
// Sweeps attribute cardinality and reports space plus average membership
// query time under the same disk model.
//
//   $ ./ablation_ridlist [--rows=N] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "index/rid_index.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/query_gen.h"

namespace bix {
namespace {

void Run(const bench::BenchArgs& args) {
  std::printf("Bitmap index vs RID lists across cardinality "
              "(rows=%llu, z=1, equality & interval encodings)\n\n",
              static_cast<unsigned long long>(args.rows));
  bench::TablePrinter table({"C", "rid(MB)", "E bitmap(MB)", "I bitmap(MB)",
                             "rid time(ms)", "E time(ms)", "I time(ms)"});
  const std::vector<uint32_t> cards =
      args.quick ? std::vector<uint32_t>{8, 64}
                 : std::vector<uint32_t>{4, 16, 32, 64, 128, 512};
  for (uint32_t c : cards) {
    Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                     .zipf_z = 1.0, .seed = args.seed});
    RidListIndex rid = RidListIndex::Build(col);
    BitmapIndex ebi = BitmapIndex::Build(
        col, Decomposition::SingleComponent(c), EncodingKind::kEquality,
        false);
    BitmapIndex ibi = BitmapIndex::Build(
        col, Decomposition::SingleComponent(c), EncodingKind::kInterval,
        false);

    std::vector<MembershipQuery> queries;
    Rng rng(args.seed + 2);
    // The generator needs C >= 3 * N_int to fit non-adjacent constituents.
    const QuerySetSpec spec = c >= 6 ? QuerySetSpec{2, 1} : QuerySetSpec{1, 1};
    for (int i = 0; i < 20; ++i) {
      queries.push_back(GenerateMembershipQuery(spec, c, &rng));
    }

    DiskModel disk;
    IoStats rid_stats;
    for (const MembershipQuery& q : queries) {
      rid.EvaluateMembership(q.values, disk, &rid_stats);
    }
    bench::QueryRunCost ce = bench::RunQueries(ebi, queries);
    bench::QueryRunCost ci = bench::RunQueries(ibi, queries);

    auto mb = [](uint64_t b) {
      return bench::FormatDouble(static_cast<double>(b) / (1 << 20), 2);
    };
    table.AddRow({std::to_string(c), mb(rid.TotalStoredBytes()),
                  mb(ebi.TotalStoredBytes()), mb(ibi.TotalStoredBytes()),
                  bench::FormatDouble(
                      rid_stats.total_seconds() * 1e3 / queries.size(), 1),
                  bench::FormatDouble(ce.avg_seconds * 1e3, 1),
                  bench::FormatDouble(ci.avg_seconds * 1e3, 1)});
  }
  table.Print();
  std::printf("\nExpected: bitmaps smaller than RID lists below C ~ 32 "
              "(equality)\nand C ~ 64 (interval); RID query time grows "
              "with selectivity, bitmap\ntime with the number of scans.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 200'000);
  bix::Run(args);
  return 0;
}
