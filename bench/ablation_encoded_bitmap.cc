// Ablation: the Wu & Buchmann encoded-bitmap design (paper Section 2's
// related work) against the paper's encoding schemes on membership
// workloads. The encoded design stores only ceil(log2 C) bitmaps; its scan
// count depends on how well the value->code assignment matches the query
// set — the optimization problem whose exponential cost the paper points
// out. We report identity codes, local-search-optimized codes, and the
// paper's schemes on the same query sets.
//
//   $ ./ablation_encoded_bitmap [--cardinality=C] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "query/interval_rewrite.h"
#include "query/membership_rewrite.h"
#include "theory/cost_model.h"
#include "theory/encoded_bitmap.h"
#include "workload/query_gen.h"

namespace bix {
namespace {

double AvgScansForScheme(EncodingKind enc, uint32_t c,
                         const std::vector<MembershipQuery>& queries) {
  const EncodingScheme& scheme = GetEncoding(enc);
  const Decomposition d = Decomposition::SingleComponent(c);
  uint64_t total = 0;
  uint64_t count = 0;
  for (const MembershipQuery& q : queries) {
    std::vector<BitmapKey> leaves;
    for (const IntervalQuery& iq : MembershipToIntervals(q.values)) {
      CollectLeaves(RewriteInterval(d, scheme, iq), &leaves);
    }
    std::sort(leaves.begin(), leaves.end(),
              [](const BitmapKey& a, const BitmapKey& b) {
                return a.Packed() < b.Packed();
              });
    leaves.erase(std::unique(leaves.begin(), leaves.end(),
                             [](const BitmapKey& a, const BitmapKey& b) {
                               return a == b;
                             }),
                 leaves.end());
    total += leaves.size();
    ++count;
  }
  return static_cast<double>(total) / count;
}

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  Rng rng(args.seed);
  // Workload: a fixed set of membership queries (the WB98 setting assumes
  // the query set is known up front).
  std::vector<MembershipQuery> queries;
  for (const QuerySetSpec& spec :
       std::vector<QuerySetSpec>{{1, 1}, {2, 1}, {5, 3}, {5, 5}}) {
    for (int i = 0; i < (args.quick ? 3 : 10); ++i) {
      queries.push_back(GenerateMembershipQuery(spec, c, &rng));
    }
  }

  EncodedBitmapModel identity = IdentityEncodedModel(c);
  Rng opt_rng(args.seed + 1);
  EncodedBitmapModel tuned = OptimizeEncodedLocalSearch(
      c, queries, args.quick ? 500 : 5000, &opt_rng);

  std::printf("Encoded-bitmap (Wu & Buchmann) vs the paper's schemes "
              "(C=%u, %zu membership queries)\n\n",
              c, queries.size());
  bench::TablePrinter table({"design", "bitmaps", "avg scans/query"});
  table.AddRow({"encoded, identity codes", std::to_string(identity.bits),
                bench::FormatDouble(
                    static_cast<double>(EncodedTotalScans(identity, queries)) /
                    queries.size())});
  table.AddRow({"encoded, tuned codes", std::to_string(tuned.bits),
                bench::FormatDouble(
                    static_cast<double>(EncodedTotalScans(tuned, queries)) /
                    queries.size())});
  for (EncodingKind enc : AllEncodingKinds()) {
    table.AddRow(
        {std::string("paper scheme ") + EncodingKindName(enc),
         std::to_string(ComputeCost(enc, c, QueryClass::kEq).space_bitmaps),
         bench::FormatDouble(AvgScansForScheme(enc, c, queries))});
  }
  table.Print();
  std::printf(
      "\nExpected: the encoded design stores the fewest bitmaps but needs\n"
      "the most scans; tuning the codes helps only as far as the workload\n"
      "is clustered (and the exact optimum is exponential to find).\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  bix::Run(args);
  return 0;
}
