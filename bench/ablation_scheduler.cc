// Ablation: the three evaluation strategies of Section 6.3 under shrinking
// buffer pools. Component-wise needs the whole working set resident;
// query-wise needs one constituent's bitmaps; buffer-aware reorders
// constituents to keep shared bitmaps hot. Reports disk reads, rescans and
// modeled time per strategy and pool size.
//
//   $ ./ablation_scheduler [--rows=N] [--cardinality=C] [--quick]

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/bitmap_index_facade.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/query_gen.h"

namespace bix {
namespace {

const char* StrategyName(EvalStrategy s) {
  switch (s) {
    case EvalStrategy::kQueryWise:
      return "query-wise";
    case EvalStrategy::kComponentWise:
      return "component-wise";
    case EvalStrategy::kBufferAware:
      return "buffer-aware";
  }
  return "?";
}

void Run(const bench::BenchArgs& args) {
  const uint32_t c = args.cardinality;
  Column col = GenerateZipfColumn({.rows = args.rows, .cardinality = c,
                                   .zipf_z = 1.0, .seed = args.seed});
  BitmapIndex index = BitmapIndex::Build(
      col, Decomposition::SingleComponent(c), EncodingKind::kInterval, false);
  // Membership queries with many constituents stress bitmap sharing (every
  // constituent near the domain middle touches I^0's neighborhood).
  std::vector<MembershipQuery> queries;
  {
    Rng rng(args.seed + 5);
    for (int i = 0; i < 40; ++i) {
      queries.push_back(GenerateMembershipQuery({5, 2}, c, &rng));
    }
  }
  const uint64_t bitmap_bytes = (args.rows + 7) / 8;

  std::printf("Evaluation-strategy ablation (C=%u, rows=%llu, interval "
              "encoding, 40 membership queries with 5 constituents)\n\n",
              c, static_cast<unsigned long long>(args.rows));
  bench::TablePrinter table({"pool(bitmaps)", "strategy", "scans",
                             "disk reads", "rescans", "time(ms/query)"});
  for (uint64_t pool_bitmaps : {2u, 4u, 8u, 64u}) {
    for (EvalStrategy strategy :
         {EvalStrategy::kQueryWise, EvalStrategy::kBufferAware,
          EvalStrategy::kComponentWise}) {
      ExecutorOptions opts;
      opts.strategy = strategy;
      opts.buffer_pool_bytes = pool_bitmaps * bitmap_bytes;
      opts.cold_pool_per_query = true;
      QueryExecutor exec(&index, opts);
      for (const MembershipQuery& q : queries) {
        exec.EvaluateMembership(q.values);
      }
      const IoStats& io = exec.stats();
      table.AddRow({std::to_string(pool_bitmaps), StrategyName(strategy),
                    std::to_string(io.scans), std::to_string(io.disk_reads),
                    std::to_string(io.rescans),
                    bench::FormatDouble(
                        io.total_seconds() * 1e3 / queries.size(), 1)});
    }
  }
  table.Print();
  std::printf("\nExpected: component-wise scans each bitmap once but "
              "rescans when the pool\nis tiny; buffer-aware <= query-wise "
              "disk reads at every pool size.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  if (args.quick) args.rows = std::min<uint64_t>(args.rows, 100'000);
  else args.rows = std::min<uint64_t>(args.rows, 500'000);
  bix::Run(args);
  return 0;
}
