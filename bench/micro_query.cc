// Microbenchmarks for end-to-end query evaluation (real CPU time, no
// simulated I/O): rewrite + fetch + bitmap operations per encoding scheme
// over a 1M-row in-memory index. The BM_CachedMembershipPerTier rows pin
// the kernel tier (scalar / avx2 / avx512) and report bytes_per_cycle over
// the leaf bitmap bytes each query touches, making the SIMD step visible
// at the query level, not just in the raw kernels.

#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "bitvector/kernels.h"
#include "query/executor.h"
#include "server/sharded_cache.h"
#include "util/clock.h"
#include "util/trace.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

struct Fixture {
  Column col;
  std::vector<std::unique_ptr<BitmapIndex>> indexes;  // by EncodingKind

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture;
      fx->col = GenerateZipfColumn(
          {.rows = 1'000'000, .cardinality = 50, .zipf_z = 1.0, .seed = 42});
      for (size_t i = 0; i < AllEncodingKinds().size(); ++i) {
        fx->indexes.push_back(std::make_unique<BitmapIndex>(
            BitmapIndex::Build(fx->col, Decomposition::SingleComponent(50),
                               AllEncodingKinds()[i], false)));
      }
      return fx;
    }();
    return *f;
  }
};

// Reports bitmap bytes copied per iteration via the global copy-stat
// tripwire — the zero-copy pipeline's headline number. Call right before
// the timed loop and again after it.
class CopyCounter {
 public:
  explicit CopyCounter(benchmark::State& state) : state_(state) {
    BitvectorCopyStats::Reset();
  }
  ~CopyCounter() {
    state_.counters["copy_bytes_per_query"] = benchmark::Counter(
        static_cast<double>(BitvectorCopyStats::bytes()) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
    state_.counters["copies_per_query"] = benchmark::Counter(
        static_cast<double>(BitvectorCopyStats::copies()) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
  }

 private:
  benchmark::State& state_;
};

void BM_IntervalQuery(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;  // measure CPU, not the cost model
  QueryExecutor exec(&index, opts);
  uint32_t lo = 10;
  CopyCounter copies(state);
  for (auto _ : state) {
    Bitvector r = exec.EvaluateInterval({lo, lo + 17});
    benchmark::DoNotOptimize(r);
    lo = (lo + 7) % 30;
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalQuery)->DenseRange(0, 6);

void BM_MembershipQuery(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  CopyCounter copies(state);
  for (auto _ : state) {
    Bitvector r = exec.EvaluateMembership(values);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MembershipQuery)->DenseRange(0, 6);

// The serving path's steady state: all leaves resident in the shared
// decoded cache, component-wise evaluation over borrowed handles. This is
// the configuration the zero-copy rewrite targets — copy_bytes_per_query
// reports 0 on the equality path and stays flat as k grows.
void BM_CachedMembership(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 8);
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  auto exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm the cache
  CopyCounter copies(state);
  for (auto _ : state) {
    Bitvector r = exec.EvaluateRewritten(exprs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedMembership)->DenseRange(0, 6);

// COUNT(*) without materializing the result bitmap.
void BM_CachedMembershipCount(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 8);
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  auto exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm the cache
  CopyCounter copies(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.EvaluateCountRewritten(exprs));
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedMembershipCount)->DenseRange(0, 6);

// Tracing overhead guard: the warm-cache membership query with a per-query
// span tree built (range(1)=1) vs the plain path (range(1)=0). The two
// rows bound what WithTrace() costs on a query whose work is pure CPU —
// the acceptance budget is <2% on the untraced row vs BM_CachedMembership.
void BM_CachedMembershipTracing(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 8);
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  auto exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm the cache
  const bool traced = state.range(1) != 0;
  for (auto _ : state) {
    std::optional<TraceSink> sink;
    if (traced) {
      sink.emplace(RealClock::Get(), "query");
      exec.SetTraceSink(&*sink);
    }
    Bitvector r = exec.EvaluateRewritten(exprs);
    benchmark::DoNotOptimize(r);
    if (traced) {
      exec.SetTraceSink(nullptr);
      TraceSpan root = sink->Finish();
      benchmark::DoNotOptimize(root);
    }
  }
  state.SetLabel(std::string(EncodingKindName(AllEncodingKinds()[
                     state.range(0)])) +
                 (traced ? "/traced" : "/untraced"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedMembershipTracing)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 6, 1), {0, 1}});

void BM_RewriteOnly(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  QueryExecutor exec(&index, {});
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  for (auto _ : state) {
    auto exprs = exec.RewriteMembership(values);
    benchmark::DoNotOptimize(exprs);
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
}
BENCHMARK(BM_RewriteOnly)->DenseRange(0, 6);

void BM_IndexBuild(benchmark::State& state) {
  Column col = GenerateZipfColumn(
      {.rows = 100'000, .cardinality = 50, .zipf_z = 1.0, .seed = 1});
  const EncodingKind enc = AllEncodingKinds()[state.range(0)];
  for (auto _ : state) {
    BitmapIndex index = BitmapIndex::Build(
        col, Decomposition::SingleComponent(50), enc, false);
    benchmark::DoNotOptimize(index);
  }
  state.SetLabel(EncodingKindName(enc));
  state.SetItemsProcessed(state.iterations() * col.row_count());
}
BENCHMARK(BM_IndexBuild)->DenseRange(0, 6);

// Warm-cache membership evaluation with the kernel tier pinned: one row
// per (encoding, tier). bytes_per_cycle is computed over the distinct leaf
// bitmap bytes a query reads — the traffic the kernels actually move — so
// rows are comparable across tiers and encodings.
void BM_CachedMembershipPerTier(benchmark::State& state, size_t enc_index,
                                kernels::Tier tier) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[enc_index];
  ShardedBitmapCache cache(&index.store(), 64ull << 20, 8);
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts, &cache);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  auto exprs = exec.RewriteMembership(values);
  exec.EvaluateRewritten(exprs);  // warm the cache
  uint64_t leaves = 0;
  for (const ExprPtr& e : exprs) leaves += CountDistinctLeaves(e);
  const uint64_t bytes_per_query = leaves * (fx.col.row_count() / 8);
  const kernels::Tier saved = kernels::ActiveTier();
  kernels::SetActiveTier(tier);
#if defined(__x86_64__) || defined(__i386__)
  const uint64_t c0 = __rdtsc();
#else
  const uint64_t c0 = 0;
#endif
  for (auto _ : state) {
    Bitvector r = exec.EvaluateRewritten(exprs);
    benchmark::DoNotOptimize(r);
  }
#if defined(__x86_64__) || defined(__i386__)
  const uint64_t cycles = __rdtsc() - c0;
#else
  const uint64_t cycles = 0;
#endif
  kernels::SetActiveTier(saved);
  state.SetBytesProcessed(state.iterations() * bytes_per_query);
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] = benchmark::Counter(
        static_cast<double>(state.iterations() * bytes_per_query) /
        static_cast<double>(cycles));
  }
  state.SetLabel(std::string(EncodingKindName(AllEncodingKinds()[enc_index])) +
                 "/" + kernels::TierName(tier));
  state.SetItemsProcessed(state.iterations());
}

void RegisterPerTierBenches() {
  for (size_t enc = 0; enc < AllEncodingKinds().size(); ++enc) {
    for (kernels::Tier t : {kernels::Tier::kScalar, kernels::Tier::kAvx2,
                            kernels::Tier::kAvx512}) {
      if (kernels::OpsForTier(t) == nullptr) continue;
      benchmark::RegisterBenchmark(
          (std::string("BM_CachedMembershipPerTier/") +
           EncodingKindName(AllEncodingKinds()[enc]) + "/" +
           kernels::TierName(t))
              .c_str(),
          BM_CachedMembershipPerTier, enc, t);
    }
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::RegisterPerTierBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
