// Microbenchmarks for end-to-end query evaluation (real CPU time, no
// simulated I/O): rewrite + fetch + bitmap operations per encoding scheme
// over a 1M-row in-memory index.

#include <benchmark/benchmark.h>

#include "query/executor.h"
#include "workload/column_gen.h"

namespace bix {
namespace {

struct Fixture {
  Column col;
  std::vector<std::unique_ptr<BitmapIndex>> indexes;  // by EncodingKind

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture;
      fx->col = GenerateZipfColumn(
          {.rows = 1'000'000, .cardinality = 50, .zipf_z = 1.0, .seed = 42});
      for (size_t i = 0; i < AllEncodingKinds().size(); ++i) {
        fx->indexes.push_back(std::make_unique<BitmapIndex>(
            BitmapIndex::Build(fx->col, Decomposition::SingleComponent(50),
                               AllEncodingKinds()[i], false)));
      }
      return fx;
    }();
    return *f;
  }
};

void BM_IntervalQuery(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;  // measure CPU, not the cost model
  QueryExecutor exec(&index, opts);
  uint32_t lo = 10;
  for (auto _ : state) {
    Bitvector r = exec.EvaluateInterval({lo, lo + 17});
    benchmark::DoNotOptimize(r);
    lo = (lo + 7) % 30;
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalQuery)->DenseRange(0, 6);

void BM_MembershipQuery(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  ExecutorOptions opts;
  opts.cold_pool_per_query = false;
  QueryExecutor exec(&index, opts);
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  for (auto _ : state) {
    Bitvector r = exec.EvaluateMembership(values);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MembershipQuery)->DenseRange(0, 6);

void BM_RewriteOnly(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  BitmapIndex& index = *fx.indexes[state.range(0)];
  QueryExecutor exec(&index, {});
  const std::vector<uint32_t> values = {6, 19, 20, 21, 22, 35};
  for (auto _ : state) {
    auto exprs = exec.RewriteMembership(values);
    benchmark::DoNotOptimize(exprs);
  }
  state.SetLabel(EncodingKindName(AllEncodingKinds()[state.range(0)]));
}
BENCHMARK(BM_RewriteOnly)->DenseRange(0, 6);

void BM_IndexBuild(benchmark::State& state) {
  Column col = GenerateZipfColumn(
      {.rows = 100'000, .cardinality = 50, .zipf_z = 1.0, .seed = 1});
  const EncodingKind enc = AllEncodingKinds()[state.range(0)];
  for (auto _ : state) {
    BitmapIndex index = BitmapIndex::Build(
        col, Decomposition::SingleComponent(50), enc, false);
    benchmark::DoNotOptimize(index);
  }
  state.SetLabel(EncodingKindName(enc));
  state.SetItemsProcessed(state.iterations() * col.row_count());
}
BENCHMARK(BM_IndexBuild)->DenseRange(0, 6);

}  // namespace
}  // namespace bix

BENCHMARK_MAIN();
