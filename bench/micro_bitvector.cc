// Microbenchmarks for the bit-vector substrate: the word-level operations
// that dominate query CPU time.

#include <benchmark/benchmark.h>

#include "bitvector/bitvector.h"
#include "util/rng.h"

namespace bix {
namespace {

Bitvector MakeRandom(uint64_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  Bitvector bv(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

void BM_And(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.AndWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_And)->Arg(1 << 16)->Arg(1 << 20)->Arg(6 << 20);

void BM_Or(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.OrWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_Or)->Arg(1 << 20);

void BM_Xor(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.XorWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_Xor)->Arg(1 << 20);

void BM_Not(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  for (auto _ : state) {
    Bitvector r = a;
    r.NotSelf();
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8));
}
BENCHMARK(BM_Not)->Arg(1 << 20);

void BM_Count(benchmark::State& state) {
  Bitvector a = MakeRandom(state.range(0), 0.5, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) / 8));
}
BENCHMARK(BM_Count)->Arg(1 << 20);

void BM_SetBits(benchmark::State& state) {
  const uint64_t bits = 1 << 20;
  Rng rng(3);
  std::vector<uint64_t> positions(10000);
  for (auto& p : positions) p = rng.UniformInt(0, bits - 1);
  for (auto _ : state) {
    Bitvector bv(bits);
    for (uint64_t p : positions) bv.Set(p);
    benchmark::DoNotOptimize(bv);
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SetBits);

void BM_ForEachSetBit(benchmark::State& state) {
  Bitvector a = MakeRandom(1 << 20, 0.01, 1);
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEachSetBit([&sum](uint64_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ForEachSetBit);

}  // namespace
}  // namespace bix

BENCHMARK_MAIN();
