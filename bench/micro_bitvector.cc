// Microbenchmarks for the bit-vector substrate: the word-level operations
// that dominate query CPU time. The BM_*PerTier rows pin the kernel tier
// (scalar / avx2 / avx512) for the run and report a bytes_per_cycle
// counter alongside google-benchmark's GB/s, so tiers are comparable in
// one report; the unsuffixed rows run whatever tier dispatch selected.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "bitvector/bitvector.h"
#include "bitvector/kernels.h"
#include "util/rng.h"

namespace bix {
namespace {

inline uint64_t Cycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return 0;
#endif
}

// Pins a kernel tier for one benchmark run and publishes bytes/cycle from
// an rdtsc reading across the timed loop.
class TierScope {
 public:
  TierScope(benchmark::State& state, kernels::Tier tier)
      : state_(state), saved_(kernels::ActiveTier()) {
    kernels::SetActiveTier(tier);
    start_cycles_ = Cycles();
  }
  ~TierScope() {
    const uint64_t cycles = Cycles() - start_cycles_;
    kernels::SetActiveTier(saved_);
    if (cycles > 0 && state_.bytes_processed() > 0) {
      state_.counters["bytes_per_cycle"] = benchmark::Counter(
          static_cast<double>(state_.bytes_processed()) /
          static_cast<double>(cycles));
    }
  }

 private:
  benchmark::State& state_;
  kernels::Tier saved_;
  uint64_t start_cycles_ = 0;
};

Bitvector MakeRandom(uint64_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  Bitvector bv(bits);
  for (uint64_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) bv.Set(i);
  }
  return bv;
}

void BM_And(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.AndWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_And)->Arg(1 << 16)->Arg(1 << 20)->Arg(6 << 20);

void BM_Or(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.OrWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_Or)->Arg(1 << 20);

void BM_Xor(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  Bitvector b = MakeRandom(bits, 0.3, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.XorWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_Xor)->Arg(1 << 20);

void BM_Not(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.3, 1);
  for (auto _ : state) {
    Bitvector r = a;
    r.NotSelf();
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8));
}
BENCHMARK(BM_Not)->Arg(1 << 20);

void BM_Count(benchmark::State& state) {
  Bitvector a = MakeRandom(state.range(0), 0.5, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) / 8));
}
BENCHMARK(BM_Count)->Arg(1 << 20);

// Fused k-ary kernels vs the naive copy-then-fold composition. The naive
// variant is exactly what the evaluator used to do: copy the first operand,
// then one full pass (load+store) per remaining operand. The fused kernel
// makes a single pass reading all k operands per word.
void BM_AndManyNaive(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  const size_t k = state.range(1);
  std::vector<Bitvector> ops;
  for (size_t i = 0; i < k; ++i) ops.push_back(MakeRandom(bits, 0.5, i + 1));
  for (auto _ : state) {
    Bitvector r = ops[0];
    for (size_t i = 1; i < k; ++i) r.AndWith(ops[i]);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * k);
}
BENCHMARK(BM_AndManyNaive)
    ->Args({1 << 20, 2})->Args({1 << 20, 4})->Args({1 << 20, 8})
    ->Args({6 << 20, 4});

void BM_AndManyFused(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  const size_t k = state.range(1);
  std::vector<Bitvector> ops;
  for (size_t i = 0; i < k; ++i) ops.push_back(MakeRandom(bits, 0.5, i + 1));
  std::vector<const Bitvector*> ptrs;
  for (const Bitvector& op : ops) ptrs.push_back(&op);
  Bitvector out;
  for (auto _ : state) {
    Bitvector::AndManyInto(ptrs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * k);
}
BENCHMARK(BM_AndManyFused)
    ->Args({1 << 20, 2})->Args({1 << 20, 4})->Args({1 << 20, 8})
    ->Args({6 << 20, 4});

void BM_OrManyNaive(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  const size_t k = state.range(1);
  std::vector<Bitvector> ops;
  for (size_t i = 0; i < k; ++i) ops.push_back(MakeRandom(bits, 0.1, i + 1));
  for (auto _ : state) {
    Bitvector r = ops[0];
    for (size_t i = 1; i < k; ++i) r.OrWith(ops[i]);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * k);
}
BENCHMARK(BM_OrManyNaive)->Args({1 << 20, 4})->Args({1 << 20, 8});

void BM_OrManyFused(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  const size_t k = state.range(1);
  std::vector<Bitvector> ops;
  for (size_t i = 0; i < k; ++i) ops.push_back(MakeRandom(bits, 0.1, i + 1));
  std::vector<const Bitvector*> ptrs;
  for (const Bitvector& op : ops) ptrs.push_back(&op);
  Bitvector out;
  for (auto _ : state) {
    Bitvector::OrManyInto(ptrs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * k);
}
BENCHMARK(BM_OrManyFused)->Args({1 << 20, 4})->Args({1 << 20, 8});

// a AND NOT b: the two-pass Not-then-And vs the fused single pass.
void BM_AndNotNaive(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.5, 1);
  Bitvector b = MakeRandom(bits, 0.5, 2);
  for (auto _ : state) {
    Bitvector nb = b;
    nb.NotSelf();
    Bitvector r = a;
    r.AndWith(nb);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_AndNotNaive)->Arg(1 << 20);

void BM_AndNotFused(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.5, 1);
  Bitvector b = MakeRandom(bits, 0.5, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.AndNotWith(b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_AndNotFused)->Arg(1 << 20);

// COUNT(a AND b): separate And-then-Count passes vs the fused popcount.
void BM_AndCountNaive(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.5, 1);
  Bitvector b = MakeRandom(bits, 0.5, 2);
  for (auto _ : state) {
    Bitvector r = a;
    r.AndWith(b);
    benchmark::DoNotOptimize(r.Count());
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_AndCountNaive)->Arg(1 << 20);

void BM_AndCountFused(benchmark::State& state) {
  const uint64_t bits = state.range(0);
  Bitvector a = MakeRandom(bits, 0.5, 1);
  Bitvector b = MakeRandom(bits, 0.5, 2);
  for (auto _ : state) {
    Bitvector r = a;
    benchmark::DoNotOptimize(r.AndWithCount(b));
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}
BENCHMARK(BM_AndCountFused)->Arg(1 << 20);

void BM_SetBits(benchmark::State& state) {
  const uint64_t bits = 1 << 20;
  Rng rng(3);
  std::vector<uint64_t> positions(10000);
  for (auto& p : positions) p = rng.UniformInt(0, bits - 1);
  for (auto _ : state) {
    Bitvector bv(bits);
    for (uint64_t p : positions) bv.Set(p);
    benchmark::DoNotOptimize(bv);
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SetBits);

void BM_ForEachSetBit(benchmark::State& state) {
  Bitvector a = MakeRandom(1 << 20, 0.01, 1);
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEachSetBit([&sum](uint64_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ForEachSetBit);

// --- Per-tier rows: the same hot kernels with the tier pinned, one row
// per tier this CPU supports, each reporting bytes_per_cycle. ---

void BM_AndPerTier(benchmark::State& state, kernels::Tier tier) {
  const uint64_t bits = 6'000'000;
  Bitvector a = MakeRandom(bits, 0.3, 1);
  const Bitvector b = MakeRandom(bits, 0.3, 2);
  TierScope scope(state, tier);
  for (auto _ : state) {
    a.AndWith(b);
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}

void BM_CountPerTier(benchmark::State& state, kernels::Tier tier) {
  const uint64_t bits = 6'000'000;
  const Bitvector a = MakeRandom(bits, 0.5, 1);
  TierScope scope(state, tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8));
}

void BM_AndManyFusedPerTier(benchmark::State& state, kernels::Tier tier) {
  const uint64_t bits = 6'000'000;
  const size_t k = 4;
  std::vector<Bitvector> ops;
  for (size_t i = 0; i < k; ++i) ops.push_back(MakeRandom(bits, 0.5, i + 1));
  std::vector<const Bitvector*> ptrs;
  for (const Bitvector& op : ops) ptrs.push_back(&op);
  Bitvector out;
  TierScope scope(state, tier);
  for (auto _ : state) {
    Bitvector::AndManyInto(ptrs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * k);
}

void BM_AndCountFusedPerTier(benchmark::State& state, kernels::Tier tier) {
  const uint64_t bits = 6'000'000;
  const Bitvector a = MakeRandom(bits, 0.5, 1);
  const Bitvector b = MakeRandom(bits, 0.5, 2);
  TierScope scope(state, tier);
  for (auto _ : state) {
    Bitvector r = a;
    benchmark::DoNotOptimize(r.AndWithCount(b));
  }
  state.SetBytesProcessed(state.iterations() * (bits / 8) * 2);
}

void RegisterPerTierBenches() {
  using Fn = void (*)(benchmark::State&, kernels::Tier);
  const std::pair<const char*, Fn> benches[] = {
      {"BM_AndPerTier", BM_AndPerTier},
      {"BM_CountPerTier", BM_CountPerTier},
      {"BM_AndManyFusedPerTier", BM_AndManyFusedPerTier},
      {"BM_AndCountFusedPerTier", BM_AndCountFusedPerTier},
  };
  for (const auto& [name, fn] : benches) {
    for (kernels::Tier t : {kernels::Tier::kScalar, kernels::Tier::kAvx2,
                            kernels::Tier::kAvx512}) {
      if (kernels::OpsForTier(t) == nullptr) continue;
      benchmark::RegisterBenchmark(
          (std::string(name) + "/" + kernels::TierName(t)).c_str(), fn, t);
    }
  }
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::RegisterPerTierBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
