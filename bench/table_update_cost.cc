// Reproduces the paper's Section 4.2 update-cost comparison: number of
// bitmaps touched when a new record is inserted, per encoding scheme
// (best / expected-under-uniform / worst over attribute values).
//
// Paper figures: E = 1/1/1; R = 1/(C-1)/2/(C-1); I = 1/~C/4/floor(C/2).
// (We count bitmaps whose bit must be SET; a value touching zero bitmaps
// (e.g. C-1 under R or I) still costs the record append itself, which is
// encoding-independent and excluded here.)
//
//   $ ./table_update_cost [--cardinality=C]

#include <cstdio>

#include "bench_support.h"
#include "theory/update_cost.h"

namespace bix {
namespace {

void Run(uint32_t c) {
  std::printf("Update cost: bitmaps touched per inserted record (C=%u)\n\n",
              c);
  bench::TablePrinter table({"encoding", "best", "expected", "worst"});
  for (EncodingKind enc : AllEncodingKinds()) {
    UpdateCost cost = ComputeUpdateCost(enc, c);
    table.AddRow({EncodingKindName(enc), std::to_string(cost.best),
                  bench::FormatDouble(cost.expected, 2),
                  std::to_string(cost.worst)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Section 4.2): E = 1/1/1; R worst at\n"
              "~(C-1)/2 expected; I in between at ~C/4 expected.\n");
}

}  // namespace
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::BenchArgs args = bix::bench::BenchArgs::Parse(argc, argv);
  bix::Run(args.cardinality);
  return 0;
}
