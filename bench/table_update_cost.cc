// Update-cost bench, in two parts.
//
// Part 1 reproduces the paper's Section 4.2 comparison: number of bitmaps
// touched when a new record is inserted, per encoding scheme (best /
// expected-under-uniform / worst over attribute values), plus the deferred-
// maintenance view (DESIGN.md section 15): the same expected touches paid
// at compaction time, amortized over the fold batch, with the WAL append
// as the only write-latency-critical work.
//
// Paper figures: E = 1/1/1; R = 1/(C-1)/2/(C-1); I = 1/~C/4/floor(C/2).
// (We count bitmaps whose bit must be SET; a value touching zero bitmaps
// (e.g. C-1 under R or I) still costs the record append itself, which is
// encoding-independent and excluded here.)
//
// Part 2 measures the writable index end to end: a mixed read/write
// workload against a WAL-backed WritableBitmapIndex served by the query
// service with background compaction, at write fractions 0% / 1% / 5% /
// 20%. Reported per cell: read goodput (OK answers per second of wall
// time), read p99, batches applied, and compactions folded.
//
//   $ ./table_update_cost [--cardinality=C] [--rows=N] [--quick]
//                         [--json=PATH]
//
// With --json=PATH, also writes the machine-readable series (the
// BENCH_updates.json trajectory artifact).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/writable_index.h"
#include "server/query_service.h"
#include "theory/update_cost.h"
#include "util/rng.h"
#include "workload/column_gen.h"
#include "workload/zipf.h"

namespace bix {
namespace bench {
namespace {

void RunTheoryTables(uint32_t c) {
  std::printf("Update cost: bitmaps touched per inserted record (C=%u)\n\n",
              c);
  TablePrinter table({"encoding", "best", "expected", "worst"});
  for (EncodingKind enc : AllEncodingKinds()) {
    UpdateCost cost = ComputeUpdateCost(enc, c);
    table.AddRow({EncodingKindName(enc), std::to_string(cost.best),
                  FormatDouble(cost.expected, 2),
                  std::to_string(cost.worst)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Section 4.2): E = 1/1/1; R worst at\n"
              "~(C-1)/2 expected; I in between at ~C/4 expected.\n");

  std::printf("\nDeferred maintenance: touches per record amortized over a\n"
              "fold of N records (WAL append is the write-latency path)\n\n");
  TablePrinter amortized({"encoding", "inplace", "N=16", "N=256", "N=4096",
                          "wal_bytes"});
  for (EncodingKind enc : AllEncodingKinds()) {
    std::vector<std::string> row = {EncodingKindName(enc)};
    row.push_back(
        FormatDouble(ComputeDeltaMaintenanceCost(enc, c, 1).inplace_touches,
                     2));
    for (uint64_t n : {16u, 256u, 4096u}) {
      row.push_back(
          FormatDouble(ComputeDeltaMaintenanceCost(enc, c, n).amortized_touches,
                       2));
    }
    row.push_back(std::to_string(
        ComputeDeltaMaintenanceCost(enc, c, 1).wal_bytes_per_record));
    amortized.AddRow(std::move(row));
  }
  amortized.Print();
}

std::vector<ServiceQuery> ZipfIntervalQueries(uint32_t cardinality,
                                              uint32_t count, uint64_t seed) {
  Rng rng(seed);
  ZipfDistribution zipf(cardinality, 1.0, &rng);
  std::vector<ServiceQuery> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t lo = zipf.Sample(&rng);
    const uint32_t width =
        static_cast<uint32_t>(rng.UniformInt(0, cardinality / 8));
    const uint32_t hi = std::min(lo + width, cardinality - 1);
    queries.push_back(ServiceQuery::Interval(IntervalQuery{lo, hi, false}));
  }
  return queries;
}

// One eight-op batch touching base rows only, so every batch stays valid
// no matter how many came before it.
UpdateBatch MakeBatch(Rng* rng, uint64_t base_rows, uint32_t cardinality) {
  UpdateBatch batch;
  for (int i = 0; i < 4; ++i) {
    batch.inserts.push_back(
        static_cast<uint32_t>(rng->UniformInt(0, cardinality - 1)));
  }
  for (int i = 0; i < 2; ++i) {
    batch.updates.push_back(UpdateRecord{
        rng->UniformInt(0, base_rows - 1), 0,
        static_cast<uint32_t>(rng->UniformInt(0, cardinality - 1))});
  }
  for (int i = 0; i < 2; ++i) {
    batch.deletes.push_back(rng->UniformInt(0, base_rows - 1));
  }
  return batch;
}

struct MixedResult {
  double write_fraction = 0.0;
  double goodput_qps = 0.0;  // OK reads per second of wall time
  double p99_ms = 0.0;       // read latency tail
  uint64_t batches = 0;      // writes applied (8 ops each)
  uint64_t compactions = 0;  // background + final folds during the run
};

// Closed-loop mixed client: one interleaved stream where every op is a
// write batch with probability `write_fraction` (applied synchronously —
// ApplyBatch returning means the batch is WAL-durable) and a read
// otherwise (submitted to the 4-worker service, gathered at the end).
// Background compaction folds the accumulating delta while both run.
MixedResult RunMixed(const Column& column, uint32_t cardinality,
                     double write_fraction, uint32_t total_ops,
                     uint64_t seed) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bix_bench_updates").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  IndexConfig config;
  config.encoding = EncodingKind::kInterval;
  auto created = WritableBitmapIndex::Create(dir, column, config);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<WritableBitmapIndex> index = std::move(created).value();

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 4096;
  options.cache_shards = 8;
  options.compaction_interval_seconds = 2e-3;
  options.compaction_min_delta_ops = 64;
  QueryService service(index.get(), options);

  const std::vector<ServiceQuery> pool =
      ZipfIntervalQueries(cardinality, 64, seed + 1);
  Rng rng(seed);

  MixedResult result;
  result.write_fraction = write_fraction;
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(total_ops);
  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < total_ops; ++i) {
    if (rng.Bernoulli(write_fraction)) {
      Status s = index->ApplyBatch(MakeBatch(&rng, column.values.size(),
                                             cardinality));
      if (!s.ok()) {
        std::fprintf(stderr, "apply failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      ++result.batches;
    } else {
      futures.push_back(service.Submit(pool[i % pool.size()]));
    }
  }
  uint64_t ok = 0;
  for (auto& f : futures) {
    if (f.get().status.ok()) ++ok;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  result.goodput_qps = static_cast<double>(ok) / wall;
  result.p99_ms = service.Stats().latency.p99() * 1e3;
  result.compactions = index->durability().compactions;
  service.Shutdown();
  std::filesystem::remove_all(dir);
  return result;
}

void Run(const BenchArgs& args) {
  RunTheoryTables(args.cardinality);

  ColumnSpec spec;
  spec.rows = args.quick ? 20'000 : std::min<uint64_t>(args.rows / 5, 200'000);
  spec.cardinality = args.cardinality;
  spec.zipf_z = 1.0;
  spec.seed = args.seed;
  const Column column = GenerateZipfColumn(spec);
  const uint32_t total_ops = args.quick ? 400 : 2000;

  std::printf("\n# mixed read/write: rows=%llu C=%u ops=%u (writable index,\n"
              "# 4 workers, 8-op batches, background compaction every 2ms)\n",
              static_cast<unsigned long long>(spec.rows), spec.cardinality,
              total_ops);
  TablePrinter table({"write_frac", "goodput_q/s", "p99_ms", "batches",
                      "compactions"});
  std::vector<MixedResult> series;
  for (double fraction : {0.0, 0.01, 0.05, 0.20}) {
    const MixedResult r =
        RunMixed(column, spec.cardinality, fraction, total_ops, args.seed);
    table.AddRow({FormatDouble(fraction, 2), FormatDouble(r.goodput_qps, 1),
                  FormatDouble(r.p99_ms, 2), std::to_string(r.batches),
                  std::to_string(r.compactions)});
    series.push_back(r);
  }
  table.Print();
  std::printf("\nExpected shape: goodput degrades gracefully with the write\n"
              "fraction (writes serialize on the WAL fsync; reads keep\n"
              "flowing through pinned snapshots while compaction folds).\n");

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"table_update_cost\",\n"
                 "  \"rows\": %llu,\n  \"cardinality\": %u,\n"
                 "  \"total_ops\": %u,\n  \"series\": [\n",
                 static_cast<unsigned long long>(spec.rows), spec.cardinality,
                 total_ops);
    for (size_t i = 0; i < series.size(); ++i) {
      const MixedResult& r = series[i];
      std::fprintf(f,
                   "   {\"write_fraction\": %.2f, \"goodput_qps\": %.1f, "
                   "\"p99_ms\": %.3f, \"batches\": %llu, "
                   "\"compactions\": %llu}%s\n",
                   r.write_fraction, r.goodput_qps, r.p99_ms,
                   static_cast<unsigned long long>(r.batches),
                   static_cast<unsigned long long>(r.compactions),
                   i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu series points)\n", args.json_path.c_str(),
                series.size());
  }
}

}  // namespace
}  // namespace bench
}  // namespace bix

int main(int argc, char** argv) {
  bix::bench::Run(bix::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
